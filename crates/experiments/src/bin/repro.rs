//! `repro` — regenerate any table or figure of the paper.
//!
//! Usage: `repro <experiment> [--quick] [--jobs N]` where
//! `<experiment>` is one of `table1`, `table2`, `table3`, `fig3`,
//! `fig4a`, `fig4b`, `fig4c`, `fig4d`, `fig5c`, `fig7`, `fig8a`,
//! `fig8b`, `fig9a`, `fig9b`, or `all`.
//!
//! `--jobs N` bounds the scenario engine's worker threads (default:
//! all cores). Output is bit-identical for every `N`; only wall-clock
//! time changes. All simulation-backed experiments share one engine,
//! so `repro all` simulates each (benchmark × FU count × L2 latency)
//! point exactly once.

use fuleak_experiments::harness::{run_suite_on, Budget, SuiteResult};
use fuleak_experiments::scenario::Engine;
use fuleak_experiments::{analytic, empirical, render};
use std::collections::HashMap;
use std::process::ExitCode;

struct Options {
    budget: Budget,
    engine: Engine,
}

/// Per-process memos: one suite per L2 latency (all backed by the
/// shared engine's point cache) and the Figure 9 sweep rows, which
/// both fig9a and fig9b render from.
#[derive(Default)]
struct Suites {
    by_l2: HashMap<u64, SuiteResult>,
    fig9_rows: Option<Vec<empirical::Fig9Row>>,
}

impl Suites {
    fn get(&mut self, opts: &Options, l2: u64) -> &SuiteResult {
        self.by_l2.entry(l2).or_insert_with(|| {
            eprintln!(
                "[repro] simulating the suite (L2 = {l2} cycles, {} workers)...",
                opts.engine.jobs()
            );
            let before = opts.engine.stats();
            let suite = run_suite_on(&opts.engine, l2, opts.budget);
            // Report this suite's own work, not process-cumulative
            // totals (the engine outlives the suite).
            eprintln!(
                "[repro] {}",
                render::engine_line(&opts.engine.stats().since(&before))
            );
            suite
        })
    }

    fn fig9_rows(&mut self, opts: &Options) -> &[empirical::Fig9Row] {
        if self.fig9_rows.is_none() {
            let suite = self.get(opts, 12).clone();
            self.fig9_rows = Some(empirical::fig9_jobs(&suite, opts.engine.jobs()));
        }
        self.fig9_rows.as_deref().expect("just inserted")
    }
}

fn run(experiment: &str, opts: &Options, suites: &mut Suites) -> bool {
    match experiment {
        "table1" => println!(
            "Table 1 — OR8 gate characteristics (70 nm)\n{}",
            analytic::table1().render()
        ),
        "table2" => println!(
            "Table 2 — architectural parameters\n{}",
            empirical::table2().render()
        ),
        "fig3" => println!(
            "Figure 3 — uncontrolled idle vs sleep mode (500-gate FU)\n{}",
            analytic::fig3_table().render()
        ),
        "fig4a" => println!(
            "Figure 4a — breakeven idle interval vs leakage factor\n{}",
            analytic::fig4a_table().render()
        ),
        "fig4b" => println!(
            "Figure 4b — policies, idle interval = 10 cycles\n{}",
            analytic::fig4_policy_table(10.0, &[0.1, 0.9]).render()
        ),
        "fig4c" => println!(
            "Figure 4c — policies, idle interval = 100 cycles\n{}",
            analytic::fig4_policy_table(100.0, &[0.1, 0.9]).render()
        ),
        "fig4d" => println!(
            "Figure 4d — worst case, idle interval = 1 cycle\n{}",
            analytic::fig4_policy_table(1.0, &[0.5]).render()
        ),
        "fig5c" => println!(
            "Figure 5c — transition energy of the three designs\n{}",
            analytic::fig5c_table().render()
        ),
        "table3" => {
            let s = suites.get(opts, 12);
            println!(
                "Table 3 — benchmarks (measured vs paper)\n{}",
                empirical::table3(s).render()
            );
        }
        "fig7" => {
            let series12 = empirical::fig7(suites.get(opts, 12));
            let series32 = empirical::fig7(suites.get(opts, 32));
            println!(
                "Figure 7 — idle-interval distribution\n{}",
                empirical::fig7_table(&[series12.clone(), series32.clone()]).render()
            );
            println!(
                "suite-average idle fraction: {:.3} (L2=12; paper: 0.468), {:.3} (L2=32)",
                series12.total_idle_fraction, series32.total_idle_fraction
            );
        }
        "fig8a" => {
            let s = suites.get(opts, 12);
            println!(
                "Figure 8a — normalized energy, p = 0.05 (alpha = 0.5)\n{}",
                empirical::fig8_table(s, 0.05, 0.5).render()
            );
        }
        "fig8b" => {
            let s = suites.get(opts, 12);
            println!(
                "Figure 8b — normalized energy, p = 0.50 (alpha = 0.5)\n{}",
                empirical::fig8_table(s, 0.5, 0.5).render()
            );
        }
        "fig9a" => {
            let rows = suites.fig9_rows(opts);
            println!(
                "Figure 9a — energy relative to NoOverhead\n{}",
                empirical::fig9a_table(rows).render()
            );
        }
        "fig9b" => {
            let rows = suites.fig9_rows(opts);
            println!(
                "Figure 9b — leakage / total energy\n{}",
                empirical::fig9b_table(rows).render()
            );
        }
        _ => return false,
    }
    true
}

const ALL: [&str; 14] = [
    "table1", "table2", "fig3", "fig4a", "fig4b", "fig4c", "fig4d", "fig5c", "table3", "fig7",
    "fig8a", "fig8b", "fig9a", "fig9b",
];

const USAGE: &str = "usage: repro <experiment>|all [--quick] [--jobs N]";

fn parse_args(args: &[String]) -> Result<(Options, Vec<&str>), String> {
    let mut quick = false;
    let mut jobs = 0usize; // 0 = all cores
    let mut targets = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --jobs value `{v}`"))?;
            }
            flag if flag.starts_with("--jobs=") => {
                let v = &flag["--jobs=".len()..];
                jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --jobs value `{v}`"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            target => targets.push(target),
        }
    }
    Ok((
        Options {
            budget: if quick { Budget::Quick } else { Budget::Full },
            engine: Engine::new(jobs),
        },
        targets,
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, targets) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if targets.is_empty() {
        eprintln!("{USAGE}");
        eprintln!("experiments: {}", ALL.join(" "));
        return ExitCode::FAILURE;
    }
    let mut suites = Suites::default();
    for target in targets {
        if target == "all" {
            for t in ALL {
                run(t, &opts, &mut suites);
            }
        } else if !run(target, &opts, &mut suites) {
            eprintln!("unknown experiment `{target}`; known: {}", ALL.join(" "));
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
