//! `repro` — regenerate any table or figure of the paper, or run an
//! ad-hoc multi-axis machine sweep.
//!
//! ```text
//! repro <experiment>... | all   [options]
//! repro sweep [axis flags]      [options]
//! repro explore [axis flags]    [options]
//! ```
//!
//! `<experiment>` is one of `table1`, `table2`, `table3`, `fig3`,
//! `fig4a`, `fig4b`, `fig4c`, `fig4d`, `fig5c`, `fig7`, `fig8a`,
//! `fig8b`, `fig9a`, `fig9b`, or `all`.
//!
//! Options (shared by both modes):
//!
//! * `--quick` — 500k-instruction points instead of 2M;
//! * `--budget N` — explicit per-point instruction count (mutually
//!   exclusive with `--quick`);
//! * `--jobs N` — bound the scenario engine's worker threads
//!   (default: all cores; output is bit-identical for every `N`);
//! * `--format text|json|csv` — the stdout view (default `text`);
//! * `--out DIR` — additionally write `<experiment>.json` and
//!   `<experiment>.csv` artifacts into `DIR`.
//!
//! Sweep axis flags take value lists — comma-separated values and
//! inclusive `lo:hi` ranges, mixable (`1:4`, `2,4,8`, `1:2,8`):
//!
//! * `--bench A,B` — benchmarks (default: all nine);
//! * `--int-fus` — integer FU count (default 1:4);
//! * `--l2` — L2 hit latency in cycles (default 12);
//! * `--width` — fetch/decode/issue/commit width;
//! * `--rob` — reorder-buffer entries;
//! * `--l1d-kb` — L1 data-cache capacity in KiB;
//! * `--l2-kb` — unified L2 capacity in KiB;
//! * `--mem` — main-memory latency in cycles;
//! * `--mshrs` — outstanding-miss registers;
//! * `--no-batch` — replay every point on the scalar reference
//!   kernel instead of lane-batching timing siblings (output is
//!   bit-identical either way).
//!
//! Evaluation axes price every simulated point under a sleep-policy /
//! technology grid (closed-form over the recorded idle spectra — no
//! re-simulation; rows multiply instead):
//!
//! * `--policy P,Q` — policy names (`maxsleep`, `gradualsleep`,
//!   `alwaysactive`, `nooverhead`, `timeout`, `adaptive`; default:
//!   the four Figure 8 policies);
//! * `--slices N,M` — GradualSleep slice counts (default:
//!   breakeven-many);
//! * `--leak F,G` — technology leakage factors `p` in `[0, 1]`
//!   (default 0.05);
//! * `--transition F,G` — sleep-switch overheads `E_slp/E_D` in
//!   `[0, 1]` (default 0.01).
//!
//! `repro explore` prices the same evaluation axes as dense ranges —
//! `--leak`/`--transition` accept `lo:hi:step` fraction ranges and
//! `--slices` strided integer ranges — through the grid-batched
//! kernel (G policy forms per spectrum traversal, no policy cache),
//! and streams three digests instead of per-point rows: per-benchmark
//! family optima, exact (E/E_max, transitions) Pareto frontiers, and
//! the best-GradualSleep-slice-count crossover map per leakage
//! factor. The default grid prices 1.59M policy points.
//!
//! All simulation-backed experiments share one engine, so `repro all`
//! simulates each (benchmark × machine × budget) point exactly once
//! and finishes with a cumulative cache-effectiveness summary on
//! stderr. Beyond the paper's tables, `repro policy-ext` runs the
//! extension-policy study (not part of `all`).

use fuleak_experiments::cli::{apply_explore_flag, apply_sweep_flag};
use fuleak_experiments::experiment::{self, sweep_table, Context};
use fuleak_experiments::explore::{explore, ExploreSpec};
use fuleak_experiments::harness::Budget;
use fuleak_experiments::loadgen::{self, LoadSpec};
use fuleak_experiments::policy::PolicyKind;
use fuleak_experiments::render;
use fuleak_experiments::result::ResultTable;
use fuleak_experiments::scenario::{Engine, SweepSpec};
use fuleak_experiments::serve::{ServeConfig, Server};
use fuleak_experiments::store::{ResultStore, StoreKind};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// The stdout view of a result table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

struct Options {
    budget: Budget,
    engine: Arc<Engine>,
    format: Format,
    out: Option<PathBuf>,
}

const USAGE: &str = "usage: repro <experiment>|all [--quick|--budget N] [--jobs N] [--format text|json|csv] [--out DIR] [--store DIR]
       repro sweep [--bench A,B] [--int-fus L] [--l2 L] [--width L] [--rob L] [--l1d-kb L] [--l2-kb L] [--mem L] [--mshrs L]
                   [--policy P,Q] [--slices L] [--leak F,G] [--transition F,G] [--no-batch] [options]
       repro explore [--bench A,B] [--policy P,Q] [--slices L] [--leak R] [--transition R] [options]
       repro bench [--runs N] [--jobs N] [--out DIR]
       repro store stats|clear|gc --max-mb N   (needs --store DIR or FULEAK_STORE)
       repro serve [--addr HOST:PORT] [--workers N] [--queue N] [--no-respcache] [--quick|--budget N] [--jobs N] [--store DIR]
       repro loadgen --addr HOST:PORT [--path TARGET] [--clients N] [--requests N] [--close] [--out DIR]
       (value lists L: comma values and lo:hi[:step] ranges, e.g. 1:4 or 2,4,8; F,G: fractions in [0,1];
        explore fraction ranges R: fractions and lo:hi:step ranges, e.g. 0:1:0.02;
        --store DIR / FULEAK_STORE=DIR attach a persistent result store behind the engine caches)";

/// Parses the shared options out of `args`, returning the leftover
/// (mode-specific) arguments.
fn parse_options(args: &[String]) -> Result<(Options, Vec<&str>), String> {
    let mut quick = false;
    let mut budget: Option<u64> = None;
    let mut jobs = 0usize; // 0 = all cores
    let mut format = Format::Text;
    let mut out = None;
    let mut store: Option<PathBuf> = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    let parse_u64 = |flag: &str, v: &str| {
        v.parse::<u64>()
            .map_err(|_| format!("invalid {flag} value `{v}`"))
    };
    fn take(
        flag: &str,
        attached: &mut Option<String>,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<String, String> {
        match attached.take() {
            Some(v) => Ok(v),
            None => it
                .next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value")),
        }
    }
    while let Some(arg) = it.next() {
        let (flag, mut value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        match flag {
            "--quick" => {
                if value.is_some() {
                    return Err("--quick takes no value".to_string());
                }
                quick = true;
            }
            "--budget" => {
                let v = take(flag, &mut value, &mut it)?;
                let n = parse_u64("--budget", &v)?;
                if n == 0 {
                    return Err("--budget must be at least 1 instruction".to_string());
                }
                budget = Some(n);
            }
            "--jobs" => {
                let v = take(flag, &mut value, &mut it)?;
                jobs = parse_u64("--jobs", &v)? as usize;
            }
            "--format" => {
                let v = take(flag, &mut value, &mut it)?;
                format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("invalid --format value `{other}`")),
                };
            }
            "--out" => out = Some(PathBuf::from(take(flag, &mut value, &mut it)?)),
            "--store" => store = Some(PathBuf::from(take(flag, &mut value, &mut it)?)),
            _ => rest.push(arg.as_str()),
        }
    }
    if quick && budget.is_some() {
        return Err("--quick and --budget are mutually exclusive".to_string());
    }
    let budget = match budget {
        Some(n) => Budget::Custom(n),
        None if quick => Budget::Quick,
        None => Budget::Full,
    };
    // `--store DIR` wins; the FULEAK_STORE environment variable is the
    // ambient fallback (empty disables it).
    let store = store.or_else(|| {
        std::env::var_os("FULEAK_STORE")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    });
    let engine = Arc::new(Engine::new(jobs));
    if let Some(dir) = store {
        let st = ResultStore::open(&dir)
            .map_err(|e| format!("cannot open --store directory `{}`: {e}", dir.display()))?;
        engine.set_store(Some(Arc::new(st)));
    }
    Ok((
        Options {
            budget,
            engine,
            format,
            out,
        },
        rest,
    ))
}

/// Prints a table to stdout in the selected format and, with `--out`,
/// writes its JSON and CSV artifacts.
fn emit(table: &ResultTable, opts: &Options) -> Result<(), String> {
    match opts.format {
        Format::Text => {
            println!("{}\n{}", table.title(), table.render());
            for note in table.notes() {
                println!("{note}");
            }
        }
        Format::Json => print!("{}", table.to_json()),
        Format::Csv => print!("{}", table.to_csv()),
    }
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create --out directory `{}`: {e}", dir.display()))?;
        for (ext, contents) in [("json", table.to_json()), ("csv", table.to_csv())] {
            let path = dir.join(format!("{}.{ext}", table.name()));
            std::fs::write(&path, contents)
                .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        }
    }
    Ok(())
}

/// Runs the named experiments (expanding `all`) against one shared
/// context.
fn run_experiments(targets: &[&str], opts: &Options) -> Result<(), String> {
    let mut ctx =
        Context::new(&opts.engine, opts.budget).with_progress(opts.format == Format::Text);
    let mut cumulative_summary = false;
    let mut queue: Vec<&str> = Vec::new();
    for &target in targets {
        if target == "all" {
            cumulative_summary = true;
            queue.extend(experiment::names());
        } else {
            queue.push(target);
        }
    }
    for name in queue {
        let exp = experiment::by_name(name).ok_or_else(|| {
            format!(
                "unknown experiment `{name}`; known: {}",
                experiment::all_names().join(" ")
            )
        })?;
        let table = exp.run(&mut ctx);
        emit(&table, opts)?;
    }
    if cumulative_summary {
        // The per-suite progress lines above cover one suite each;
        // this line shows what sharing the engine across experiments
        // saved over the whole run.
        eprintln!(
            "[repro] {}",
            render::engine_summary_line(&opts.engine.stats())
        );
    }
    Ok(())
}

/// Runs `repro sweep`: builds a [`SweepSpec`] from the axis flags and
/// tables one row per simulated point.
fn run_sweep(args: &[&str], opts: &Options) -> Result<(), String> {
    let mut spec = SweepSpec::new(opts.budget);
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        let (flag, value) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag, None),
        };
        if flag == "--no-batch" {
            if value.is_some() {
                return Err("--no-batch takes no value".to_string());
            }
            opts.engine.set_batching(false);
            continue;
        }
        let value = match value {
            Some(v) => v,
            None => it
                .next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))?,
        };
        spec = apply_sweep_flag(spec, flag, &value)?;
    }
    let points = spec
        .try_expand()
        .map_err(|e| format!("invalid sweep: {e}"))?
        .len();
    if opts.format == Format::Text {
        if spec.has_eval_axes() {
            eprintln!(
                "[repro] sweeping {points} machine points x {} policy points ({} workers)...",
                spec.eval_points().len(),
                opts.engine.jobs()
            );
        } else {
            eprintln!(
                "[repro] sweeping {points} points ({} workers)...",
                opts.engine.jobs()
            );
        }
    }
    let table = sweep_table(&opts.engine, &spec).map_err(|e| format!("invalid sweep: {e}"))?;
    emit(&table, opts)?;
    if opts.format == Format::Text {
        eprintln!(
            "[repro] {}",
            render::engine_summary_line(&opts.engine.stats())
        );
    }
    Ok(())
}

/// Runs `repro explore`: builds an [`ExploreSpec`] from the axis
/// flags and streams the grid through the batched evaluation kernel,
/// emitting the optima, frontier, and crossover digests in order.
fn run_explore(args: &[&str], opts: &Options) -> Result<(), String> {
    let mut spec = ExploreSpec::new(opts.budget);
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        let (flag, value) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag, None),
        };
        let value = match value {
            Some(v) => v,
            None => it
                .next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))?,
        };
        spec = apply_explore_flag(spec, flag, &value)?;
    }
    if opts.format == Format::Text {
        eprintln!(
            "[repro] exploring {} technology items x {} policy forms = {} grid points ({} workers)...",
            spec.items(),
            spec.form_combos().len(),
            spec.points(),
            opts.engine.jobs()
        );
    }
    let start = std::time::Instant::now();
    let result = explore(&opts.engine, &spec);
    opts.engine
        .note_grid_nanos(start.elapsed().as_nanos() as u64);
    for table in [&result.optima, &result.frontier, &result.crossover] {
        emit(table, opts)?;
    }
    if opts.format == Format::Text {
        eprintln!(
            "[repro] {}",
            render::engine_summary_line(&opts.engine.stats())
        );
    }
    Ok(())
}

/// Times one closure over `runs` repetitions; returns every wall
/// clock in seconds, in run order.
fn time_runs(runs: usize, mut work: impl FnMut()) -> Vec<f64> {
    (0..runs)
        .map(|_| {
            let start = std::time::Instant::now();
            work();
            start.elapsed().as_secs_f64()
        })
        .collect()
}

fn json_seconds(seconds: &[f64]) -> String {
    let list = seconds
        .iter()
        .map(|s| format!("{s:.3}"))
        .collect::<Vec<_>>()
        .join(", ");
    let best = seconds.iter().cloned().fold(f64::INFINITY, f64::min);
    format!("{{\"seconds\": [{list}], \"best_seconds\": {best:.3}}}")
}

/// Runs `repro bench`: a machine-readable wall-clock harness for the
/// perf trajectory (`BENCH_PR4.json` and the CI perf-smoke artifact).
/// Times, best-of-N on a cold engine each run:
///
/// * the full `repro all --quick` experiment suite (tables rendered
///   but not printed),
/// * a standard fixed-geometry sweep (2 benchmarks × FU 1–4 × four L2
///   latencies = 32 points) — the shape the annotation cache
///   accelerates most,
/// * that sweep against a persistent store, cold (simulate +
///   write-behind) vs warm (a fresh engine served entirely from
///   disk — asserted zero-simulation and byte-identical first), and
/// * that sweep's replay phase alone, at the kernel layer: a scalar
///   per-point loop vs the lane-batched kernel chunked to
///   [`MAX_LANES`], over identical cached annotations (asserted
///   field-equal before timing, so the ratio isolates traversal
///   cost),
/// * a dense policy grid over the quick suite's warm spectra: the
///   scalar `policy_energy_of` loop vs the `GridEval` kernel
///   (asserted identical per form before timing), and
/// * the full default `repro explore` grid end-to-end on a fresh
///   engine (the ≥10⁶-points acceptance number).
fn run_bench(args: &[&str], opts: &Options) -> Result<(), String> {
    let mut runs = 3usize;
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        let (flag, value) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag, None),
        };
        match flag {
            "--runs" => {
                let v = match value {
                    Some(v) => v,
                    None => it
                        .next()
                        .map(|s| s.to_string())
                        .ok_or_else(|| "--runs needs a value".to_string())?,
                };
                runs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid --runs value `{v}`"))?;
            }
            other => return Err(format!("unknown bench flag `{other}`")),
        }
    }
    // The harness always times Budget::Quick (that is the recorded
    // trajectory); reject shared options it would silently ignore
    // rather than let `--budget 2000000` pretend to have been timed.
    if let Budget::Custom(_) = opts.budget {
        return Err("repro bench always times --quick; --budget is not supported".to_string());
    }
    if opts.format != Format::Text {
        return Err("repro bench emits JSON only; --format is not supported".to_string());
    }
    let jobs = opts.engine.jobs();
    eprintln!(
        "[repro] bench: {runs} run(s) of `all --quick`, a 32-point sweep, and its lane-batched replay ({jobs} workers)..."
    );
    let all_quick = time_runs(runs, || {
        let engine = Engine::new(jobs);
        let mut ctx = Context::new(&engine, Budget::Quick).with_progress(false);
        for name in experiment::names() {
            let exp = experiment::by_name(name).expect("registry names resolve");
            let _ = exp.run(&mut ctx);
        }
    });
    let sweep_spec = || {
        SweepSpec::new(Budget::Quick)
            .benches(["gzip", "vpr"])
            .axis_int_fus(1..=4)
            .axis_l2_latency([12, 18, 24, 32])
    };
    let sweep_points = sweep_spec().scenarios().len();
    let sweep = time_runs(runs, || {
        let engine = Engine::new(jobs);
        engine.run_sweep(&sweep_spec());
    });

    // Persistent-store workload: the same fixed-geometry sweep against
    // a scratch store directory — cold (simulate + write-behind) vs
    // warm (a fresh engine reading every point back from disk). The
    // warm pass asserts zero simulations and byte-identical tables
    // before being timed, so the ratio is the pure warm-start win.
    use fuleak_experiments::experiment::sweep_table;
    use fuleak_experiments::ResultStore;
    let store_dir = std::env::temp_dir().join(format!("fuleak-bench-store-{}", std::process::id()));
    let open_store = |dir: &std::path::Path| {
        std::sync::Arc::new(ResultStore::open(dir).expect("open bench store directory"))
    };
    {
        let _ = std::fs::remove_dir_all(&store_dir);
        let cold = Engine::new(jobs);
        cold.set_store(Some(open_store(&store_dir)));
        cold.run_sweep(&sweep_spec());
        let reference = sweep_table(&cold, &sweep_spec()).expect("cold store sweep");
        let warm = Engine::new(jobs);
        warm.set_store(Some(open_store(&store_dir)));
        assert_eq!(
            warm.run_sweep(&sweep_spec()),
            0,
            "warm store must serve every sweep point"
        );
        let replayed = sweep_table(&warm, &sweep_spec()).expect("warm store sweep");
        assert!(
            replayed.to_json() == reference.to_json(),
            "store round-trip changed the sweep table"
        );
    }
    eprintln!("[repro] bench: {sweep_points}-point sweep, cold vs warm persistent store...");
    let store_cold = time_runs(runs, || {
        let _ = std::fs::remove_dir_all(&store_dir);
        let engine = Engine::new(jobs);
        engine.set_store(Some(open_store(&store_dir)));
        engine.run_sweep(&sweep_spec());
    });
    let store_warm = time_runs(runs, || {
        let engine = Engine::new(jobs);
        engine.set_store(Some(open_store(&store_dir)));
        engine.run_sweep(&sweep_spec());
    });
    let _ = std::fs::remove_dir_all(&store_dir);

    // Policy-evaluation workload: price a policy × slices × leakage
    // grid over the quick suite (a) with the closed-form spectrum
    // evaluator and (b) with the historical per-interval replay
    // (`account_intervals` over the expanded interval lists — the
    // pre-spectrum implementation). Identical energies, so the ratio
    // is the pure per-point policy-evaluation speedup.
    use fuleak_core::accounting::account_intervals;
    use fuleak_core::closed_form::BoundaryPolicy;
    use fuleak_core::{EnergyModel, PolicyForm, TechnologyParams};
    use fuleak_experiments::harness::run_suite_on;
    use fuleak_experiments::policy::policy_energy_of;
    let engine = Engine::new(jobs);
    let suite = run_suite_on(&engine, 12, Budget::Quick);
    let lists: Vec<Vec<Vec<u64>>> = suite
        .runs
        .iter()
        .map(|r| r.sim.fu_idle.iter().map(|s| s.to_lengths()).collect())
        .collect();
    let grid: Vec<(PolicyKind, Option<u32>)> = vec![
        (PolicyKind::MaxSleep, None),
        (PolicyKind::AlwaysActive, None),
        (PolicyKind::NoOverhead, None),
        (PolicyKind::GradualSleep, None),
        (PolicyKind::GradualSleep, Some(2)),
        (PolicyKind::GradualSleep, Some(8)),
        (PolicyKind::GradualSleep, Some(32)),
        (PolicyKind::GradualSleep, Some(128)),
    ];
    let leaks = [0.05, 0.5];
    let policy_points = grid.len() * leaks.len() * suite.runs.len();
    let model_at = |p: f64| {
        EnergyModel::new(
            TechnologyParams::with_leakage_factor(p).expect("p in range"),
            0.5,
        )
        .expect("alpha in range")
    };
    let boundary_of = |form: PolicyForm| match form {
        PolicyForm::MaxSleep => BoundaryPolicy::MaxSleep,
        PolicyForm::AlwaysActive => BoundaryPolicy::AlwaysActive,
        PolicyForm::NoOverhead => BoundaryPolicy::NoOverhead,
        PolicyForm::GradualSleep { slices } => BoundaryPolicy::GradualSleep { slices },
        _ => unreachable!("the bench grid holds boundary policies only"),
    };
    // Sanity: both paths price one point identically before timing.
    {
        let model = model_at(0.5);
        let form = PolicyKind::GradualSleep.form(&model, Some(8));
        let by_spectrum = policy_energy_of(&model, form, &suite.runs[0].sim);
        let by_replay: f64 = lists[0]
            .iter()
            .enumerate()
            .map(|(fu, list)| {
                account_intervals(
                    &model,
                    boundary_of(form),
                    suite.runs[0].sim.fu_active[fu],
                    list,
                )
                .energy
                .total()
            })
            .sum();
        assert!(
            (by_spectrum.energy.total() - by_replay).abs() / by_replay < 1e-9,
            "spectrum and replay paths disagree"
        );
    }
    eprintln!(
        "[repro] bench: policy evaluation, {policy_points} points, spectrum vs interval replay..."
    );
    let policy_spectrum = time_runs(runs, || {
        for &p in &leaks {
            let model = model_at(p);
            for run in &suite.runs {
                for &(kind, slices) in &grid {
                    let form = kind.form(&model, slices);
                    std::hint::black_box(policy_energy_of(&model, form, &run.sim));
                }
            }
        }
    });
    let policy_replay = time_runs(runs, || {
        for &p in &leaks {
            let model = model_at(p);
            for (run, fu_lists) in suite.runs.iter().zip(&lists) {
                for &(kind, slices) in &grid {
                    let form = kind.form(&model, slices);
                    let boundary = boundary_of(form);
                    for (fu, list) in fu_lists.iter().enumerate() {
                        std::hint::black_box(account_intervals(
                            &model,
                            boundary,
                            run.sim.fu_active[fu],
                            list,
                        ));
                    }
                }
            }
        }
    });
    let best = |secs: &[f64]| secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let per_point_us = |secs: &[f64]| 1e6 * best(secs) / policy_points as f64;
    let speedup = per_point_us(&policy_replay) / per_point_us(&policy_spectrum);
    let policy_side = |secs: &[f64]| {
        format!(
            "{{\"best_seconds\": {:.6}, \"per_point_us\": {:.2}}}",
            best(secs),
            per_point_us(secs)
        )
    };

    // Grid-kernel workload: price a dense policy grid over the quick
    // suite's warm spectra (a) with the scalar per-point
    // `policy_energy_of` loop and (b) with `GridEval` — G forms per
    // spectrum traversal. Results are asserted identical per form
    // before timing, so the ratio isolates the traversal batching.
    use fuleak_core::accounting::PolicyRun;
    use fuleak_core::GridEval;
    use fuleak_experiments::explore::{explore, fraction_steps, ExploreSpec};
    // The form grid is exactly the default exploration's per-item
    // grid (all five families, GradualSleep slices 1..=64), so the
    // measured ratio is the one `repro explore` actually sees.
    let grid_combos: Vec<(PolicyKind, Option<u32>)> = ExploreSpec::new(Budget::Quick).form_combos();
    let grid_models: Vec<_> = fraction_steps(0.0, 1.0, 0.1)
        .into_iter()
        .flat_map(|p| [(p, 0.01), (p, 0.5)])
        .map(|(p, tr)| {
            EnergyModel::new(
                TechnologyParams::new(p, 0.001, tr, 0.5).expect("bench fractions in range"),
                0.5,
            )
            .expect("alpha in range")
        })
        .collect();
    let grid_points = grid_combos.len() * grid_models.len() * suite.runs.len();
    // Models fuse into batches of `PREFERRED_BATCH`: the kernel prices
    // every (model, form) lane of a batch in the same spectrum
    // traversal, so per-entry decode and partition walks amortize
    // across the group while the accumulator working set stays in L1.
    // Form lists are per model (TimeoutSleep resolves the model's
    // break-even interval).
    let grid_forms: Vec<Vec<_>> = grid_models
        .iter()
        .map(|model| grid_combos.iter().map(|&(k, s)| k.form(model, s)).collect())
        .collect();
    let grid_groups: Vec<Vec<(&EnergyModel, &[_])>> = grid_models
        .chunks(GridEval::PREFERRED_BATCH)
        .zip(grid_forms.chunks(GridEval::PREFERRED_BATCH))
        .map(|(models, forms)| {
            models
                .iter()
                .zip(forms)
                .map(|(model, forms)| (model, forms.as_slice()))
                .collect()
        })
        .collect();
    // The warm kernel is built once outside the timed region — the
    // explorer likewise reuses one kernel per worker — so the timed
    // loop measures renew (lane rebuild) + traversals, not the
    // one-time ramp-table construction.
    let mut grid = GridEval::new_batch(&grid_groups[0]);
    {
        // Same batched structure as the timed loop below, so the
        // assertion covers exactly the code path being timed.
        let mut totals: Vec<PolicyRun> = Vec::new();
        for items in &grid_groups {
            grid.renew_batch(items);
            for run in &suite.runs {
                totals.clear();
                totals.resize(grid.grid_len(), PolicyRun::default());
                for (fu, spectrum) in run.sim.fu_idle.iter().enumerate() {
                    for (total, one) in totals
                        .iter_mut()
                        .zip(grid.run(run.sim.fu_active[fu], spectrum))
                    {
                        *total += *one;
                    }
                }
                for ((model, forms), item_totals) in
                    items.iter().zip(totals.chunks(grid_combos.len()))
                {
                    for (&form, got) in forms.iter().zip(item_totals) {
                        assert!(
                            *got == policy_energy_of(model, form, &run.sim),
                            "grid kernel and scalar loop disagree on a policy point"
                        );
                    }
                }
            }
        }
    }
    eprintln!(
        "[repro] bench: grid kernel, {grid_points} points ({} forms/grid), scalar vs grid...",
        grid_combos.len()
    );
    let grid_scalar = time_runs(runs, || {
        for model in &grid_models {
            let forms: Vec<_> = grid_combos.iter().map(|&(k, s)| k.form(model, s)).collect();
            for run in &suite.runs {
                for &form in &forms {
                    std::hint::black_box(policy_energy_of(model, form, &run.sim));
                }
            }
        }
    });
    let mut totals: Vec<PolicyRun> = Vec::new();
    let grid_batched = time_runs(runs, || {
        for items in &grid_groups {
            grid.renew_batch(items);
            for run in &suite.runs {
                totals.clear();
                totals.resize(grid.grid_len(), PolicyRun::default());
                for (fu, spectrum) in run.sim.fu_idle.iter().enumerate() {
                    for (total, one) in totals
                        .iter_mut()
                        .zip(grid.run(run.sim.fu_active[fu], spectrum))
                    {
                        *total += *one;
                    }
                }
                std::hint::black_box(&mut totals);
            }
        }
    });

    // End-to-end default exploration: the full default grid through
    // `explore()` on a fresh engine each run (substrate simulation
    // included), the number the ≥10⁶-points acceptance pins.
    let explore_spec = ExploreSpec::new(Budget::Quick);
    let explore_points = explore_spec.points();
    eprintln!("[repro] bench: default explore, {explore_points} grid points end-to-end...");
    let explore_runs = time_runs(runs, || {
        let engine = Engine::new(jobs);
        std::hint::black_box(explore(&engine, &explore_spec));
    });

    // Lane-batched replay workload: the fixed-geometry sweep's points
    // replayed at the kernel layer — a scalar per-point loop vs the
    // lane-batched kernel chunked to `MAX_LANES` — over the same
    // cached annotations. Both paths are asserted field-equal before
    // timing, so the ratio isolates the traversal cost alone.
    use fuleak_uarch::{BatchedKernel, CoreConfig, TimingKernel, MAX_LANES};
    use fuleak_workloads::annotated::AnnotatedTrace;
    use std::sync::Arc;
    let scenarios = sweep_spec().scenarios();
    let mut lane_groups: Vec<(Arc<AnnotatedTrace>, Vec<CoreConfig>)> = Vec::new();
    for s in &scenarios {
        let ann = engine.annotation(s.bench, s.budget, &s.machine);
        match lane_groups.iter_mut().find(|(a, _)| Arc::ptr_eq(a, &ann)) {
            Some((_, cfgs)) => cfgs.push(s.machine.config().clone()),
            None => lane_groups.push((ann, vec![s.machine.config().clone()])),
        }
    }
    let mut scalar_kernel = TimingKernel::new();
    let mut batched_kernel = BatchedKernel::new();
    for (ann, cfgs) in &lane_groups {
        for chunk in cfgs.chunks(MAX_LANES) {
            let batched = batched_kernel.run(ann, chunk);
            for (cfg, lane) in chunk.iter().zip(&batched) {
                assert!(
                    scalar_kernel.run(ann, cfg) == *lane,
                    "scalar and batched kernels disagree on a sweep point"
                );
            }
        }
    }
    eprintln!(
        "[repro] bench: lane-batched replay, {sweep_points} points, scalar vs batched kernel..."
    );
    let replay_scalar = time_runs(runs, || {
        for (ann, cfgs) in &lane_groups {
            for cfg in cfgs {
                std::hint::black_box(scalar_kernel.run(ann, cfg));
            }
        }
    });
    let replay_batched = time_runs(runs, || {
        for (ann, cfgs) in &lane_groups {
            for chunk in cfgs.chunks(MAX_LANES) {
                std::hint::black_box(batched_kernel.run(ann, chunk));
            }
        }
    });
    // Serving-tier workload: the same fixed-geometry sweep over HTTP.
    // Cold: 8 concurrent clients race one cold sweep — the engine's
    // single-flight layer must simulate each grid point exactly once,
    // so the dedup factor is requested/simulated points. Warm:
    // closed-loop throughput with keep-alive + response cache (the
    // production path), keep-alive without the cache (render per
    // request), and connection-per-request without the cache (the
    // pre-pool thread-per-connection baseline).
    let serve_target = "/sweep?bench=gzip,vpr&int-fus=1:4&l2=12,18,24,32&format=json";
    eprintln!("[repro] bench: serving tier, {sweep_points}-point sweep over HTTP...");
    let serve_engine = std::sync::Arc::new(Engine::new(jobs));
    let server = Server::bind(
        "127.0.0.1:0",
        std::sync::Arc::clone(&serve_engine),
        Budget::Quick,
    )
    .map_err(|e| format!("bench serve: {e}"))?;
    let serve_addr = server.local_addr().to_string();
    let handle = server.spawn();
    let mut cold_spec = LoadSpec::new(serve_addr.clone(), serve_target);
    cold_spec.clients = 8;
    cold_spec.requests = 1;
    let serve_cold = loadgen::run(&cold_spec);
    let cold_simulated = serve_engine.stats().simulated().max(1);
    let serve_dedup = (cold_spec.clients * sweep_points) as f64 / cold_simulated as f64;
    let mut warm_spec = LoadSpec::new(serve_addr, serve_target);
    warm_spec.clients = 4;
    warm_spec.requests = 64;
    let warm_cached = loadgen::run(&warm_spec);
    handle.stop();
    // Same warm engine, response cache disabled: every request pays a
    // render; close mode additionally pays a connection per request.
    let nocache = ServeConfig {
        respcache_bytes: 0,
        ..ServeConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", serve_engine, Budget::Quick, nocache)
        .map_err(|e| format!("bench serve: {e}"))?;
    warm_spec.addr = server.local_addr().to_string();
    let handle = server.spawn();
    let warm_nocache = loadgen::run(&warm_spec);
    warm_spec.keep_alive = false;
    let warm_close = loadgen::run(&warm_spec);
    handle.stop();
    let serve_speedup = if warm_close.throughput_rps > 0.0 {
        warm_cached.throughput_rps / warm_close.throughput_rps
    } else {
        0.0
    };
    let load_side = |r: &fuleak_experiments::loadgen::LoadReport| {
        format!(
            "{{\"throughput_rps\": {:.0}, \"p50_micros\": {}, \"p99_micros\": {}, \"errors\": {}}}",
            r.throughput_rps, r.p50_micros, r.p99_micros, r.errors
        )
    };

    let traversal_ratio = best(&replay_scalar) / best(&replay_batched);
    let max_lanes = MAX_LANES;
    let warm_speedup = best(&store_cold) / best(&store_warm);
    let grid_side = |secs: &[f64]| {
        format!(
            "{{\"best_seconds\": {:.6}, \"points_per_sec\": {:.0}}}",
            best(secs),
            grid_points as f64 / best(secs)
        )
    };
    let grid_speedup = best(&grid_scalar) / best(&grid_batched);
    let explore_pps = explore_points as f64 / best(&explore_runs);

    let json = format!(
        "{{\n  \"name\": \"repro-bench\",\n  \"budget\": \"quick\",\n  \"jobs\": {jobs},\n  \"runs\": {runs},\n  \"all_quick\": {},\n  \"sweep_fixed_geometry\": {{\"points\": {sweep_points}, {}}},\n  \"store_sweep\": {{\"points\": {sweep_points}, \"cold\": {}, \"warm\": {}, \"warm_speedup\": {warm_speedup:.1}}},\n  \"batched_sweep\": {{\"points\": {sweep_points}, \"max_lanes\": {max_lanes}, \"scalar\": {}, \"batched\": {}, \"traversal_ratio\": {traversal_ratio:.2}}},\n  \"policy_eval\": {{\"points\": {policy_points}, \"spectrum\": {}, \"interval_replay\": {}, \"speedup_per_point\": {speedup:.1}}},\n  \"explore_grid\": {{\"points\": {grid_points}, \"forms_per_grid\": {}, \"scalar\": {}, \"grid\": {}, \"speedup_per_point\": {grid_speedup:.1}}},\n  \"explore_default\": {{\"points\": {explore_points}, {}, \"points_per_sec\": {explore_pps:.0}}},\n  \"serve\": {{\"target\": \"{serve_target}\", \"cold_concurrent\": {{\"clients\": {}, \"grid_points\": {sweep_points}, \"requested_points\": {}, \"simulated\": {cold_simulated}, \"dedup_factor\": {serve_dedup:.1}, \"wall_seconds\": {:.3}}}, \"warm_keepalive_cached\": {}, \"warm_keepalive_nocache\": {}, \"warm_close_nocache\": {}, \"cached_keepalive_vs_close_nocache\": {serve_speedup:.1}}}\n}}\n",
        json_seconds(&all_quick),
        json_seconds(&sweep).trim_start_matches('{').trim_end_matches('}'),
        json_seconds(&store_cold),
        json_seconds(&store_warm),
        json_seconds(&replay_scalar),
        json_seconds(&replay_batched),
        policy_side(&policy_spectrum),
        policy_side(&policy_replay),
        grid_combos.len(),
        grid_side(&grid_scalar),
        grid_side(&grid_batched),
        json_seconds(&explore_runs)
            .trim_start_matches('{')
            .trim_end_matches('}'),
        cold_spec.clients,
        cold_spec.clients * sweep_points,
        serve_cold.elapsed_seconds,
        load_side(&warm_cached),
        load_side(&warm_nocache),
        load_side(&warm_close),
    );
    print!("{json}");
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create --out directory `{}`: {e}", dir.display()))?;
        let path = dir.join("bench.json");
        std::fs::write(&path, &json)
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    }
    Ok(())
}

/// Runs `repro store stats|clear|gc` against the attached store.
fn run_store(args: &[&str], opts: &Options) -> Result<(), String> {
    let store = opts
        .engine
        .store()
        .ok_or("repro store needs --store DIR or FULEAK_STORE")?;
    match args {
        ["stats"] => {
            let stats = store.stats();
            println!("store: {}", store.root().display());
            for (kind, k) in StoreKind::ALL.into_iter().zip(stats.kinds) {
                println!(
                    "{:>8}: {} entries, {} bytes",
                    kind.dir(),
                    k.entries,
                    k.bytes
                );
            }
            println!(
                "{:>8}: {} entries, {} bytes",
                "total",
                stats.entries(),
                stats.bytes()
            );
            Ok(())
        }
        ["clear"] => {
            let removed = store.clear().map_err(|e| format!("store clear: {e}"))?;
            println!("removed {removed} entries from {}", store.root().display());
            Ok(())
        }
        ["gc", rest @ ..] => {
            let mut max_mb: Option<u64> = None;
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                let (flag, value) = match flag.split_once('=') {
                    Some((f, v)) => (f, Some(v.to_string())),
                    None => (flag, None),
                };
                match flag {
                    "--max-mb" => {
                        let v = match value {
                            Some(v) => v,
                            None => it
                                .next()
                                .map(|s| s.to_string())
                                .ok_or_else(|| "--max-mb needs a value".to_string())?,
                        };
                        max_mb = Some(
                            v.parse::<u64>()
                                .map_err(|_| format!("invalid --max-mb value `{v}`"))?,
                        );
                    }
                    other => return Err(format!("unknown store gc flag `{other}`")),
                }
            }
            let max_mb = max_mb.ok_or("repro store gc needs --max-mb N")?;
            let report = store.gc(max_mb * 1024 * 1024);
            println!(
                "evicted {} entries ({} -> {} bytes, budget {} MiB)",
                report.evicted, report.bytes_before, report.bytes_after, max_mb
            );
            Ok(())
        }
        _ => Err("repro store subcommands: stats, clear, gc --max-mb N".to_string()),
    }
}

/// Runs `repro serve`: binds the daemon and blocks in its accept loop.
fn run_serve(args: &[&str], opts: &Options) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        let (flag, value) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag, None),
        };
        let mut take = |name: &str| match value.clone() {
            Some(v) => Ok(v),
            None => it
                .next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{name} needs a value")),
        };
        match flag {
            "--addr" => addr = take("--addr")?,
            "--workers" => {
                let v = take("--workers")?;
                config.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid --workers value `{v}`"))?;
            }
            "--queue" => {
                let v = take("--queue")?;
                config.queue_depth = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid --queue value `{v}`"))?;
            }
            "--no-respcache" => config.respcache_bytes = 0,
            other => return Err(format!("unknown serve flag `{other}`")),
        }
    }
    if opts.format != Format::Text {
        return Err(
            "repro serve clients pick the format per request; --format is not supported"
                .to_string(),
        );
    }
    let respcache = if config.respcache_bytes > 0 {
        format!("respcache {} MiB", config.respcache_bytes >> 20)
    } else {
        "respcache off".to_string()
    };
    let store = match opts.engine.store() {
        Some(st) => format!("store {}", st.root().display()),
        None => "no store".to_string(),
    };
    let workers = config.workers;
    let queue = config.queue_depth;
    let server = Server::bind_with(&addr, Arc::clone(&opts.engine), opts.budget, config)?;
    eprintln!(
        "[repro] serving on http://{} ({} instructions/point, {} engine jobs, {workers} pool workers, queue {queue}, {respcache}, {store})",
        server.local_addr(),
        opts.budget.instructions(),
        opts.engine.jobs()
    );
    server.run();
    Ok(())
}

/// Runs `repro loadgen`: a closed-loop measurement client against a
/// running `repro serve` daemon. The report (throughput and latency
/// percentiles) is wallclock telemetry, printed to stdout as JSON
/// like `repro bench`.
fn run_loadgen(args: &[&str], opts: &Options) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut path = "/sweep?bench=gzip&int-fus=1:2&format=json".to_string();
    let mut clients = 4usize;
    let mut requests = 32usize;
    let mut keep_alive = true;
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        let (flag, value) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag, None),
        };
        let mut take = |name: &str| match value.clone() {
            Some(v) => Ok(v),
            None => it
                .next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{name} needs a value")),
        };
        let parse_count = |name: &str, v: String| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("invalid {name} value `{v}`"))
        };
        match flag {
            "--addr" => addr = Some(take("--addr")?),
            "--path" => path = take("--path")?,
            "--clients" => clients = parse_count("--clients", take("--clients")?)?,
            "--requests" => requests = parse_count("--requests", take("--requests")?)?,
            "--close" => keep_alive = false,
            other => return Err(format!("unknown loadgen flag `{other}`")),
        }
    }
    let addr = addr.ok_or("repro loadgen needs --addr HOST:PORT")?;
    if opts.format != Format::Text {
        return Err("repro loadgen emits JSON only; --format is not supported".to_string());
    }
    let mut spec = LoadSpec::new(addr, path);
    spec.clients = clients;
    spec.requests = requests;
    spec.keep_alive = keep_alive;
    eprintln!(
        "[repro] loadgen: {} clients x {} requests, {} connections, GET {}",
        spec.clients,
        spec.requests,
        if spec.keep_alive {
            "keep-alive"
        } else {
            "per-request"
        },
        spec.path
    );
    let report = loadgen::run(&spec);
    let json = format!("{}\n", report.to_json());
    print!("{json}");
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create --out directory `{}`: {e}", dir.display()))?;
        let path = dir.join("loadgen.json");
        std::fs::write(&path, &json)
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    }
    if report.requests == 0 {
        return Err("loadgen completed no requests (is the server running?)".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_options(&args).and_then(|(opts, rest)| {
        if rest.is_empty() {
            return Err(format!(
                "experiments: {}",
                experiment::all_names().join(" ")
            ));
        }
        if rest[0] == "sweep" {
            run_sweep(&rest[1..], &opts)
        } else if rest[0] == "explore" {
            run_explore(&rest[1..], &opts)
        } else if rest[0] == "bench" {
            run_bench(&rest[1..], &opts)
        } else if rest[0] == "store" {
            run_store(&rest[1..], &opts)
        } else if rest[0] == "serve" {
            run_serve(&rest[1..], &opts)
        } else if rest[0] == "loadgen" {
            run_loadgen(&rest[1..], &opts)
        } else if let Some(flag) = rest.iter().find(|a| a.starts_with("--")) {
            Err(format!("unknown flag `{flag}`"))
        } else {
            run_experiments(&rest, &opts)
        }
    });
    match parsed {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> Options {
        Options {
            budget: Budget::Quick,
            engine: Arc::new(Engine::new(1)),
            format: Format::Json,
            out: None,
        }
    }

    #[test]
    fn no_batch_rejects_attached_value() {
        let opts = options();
        let err = run_sweep(&["--no-batch=1"], &opts).unwrap_err();
        assert!(err.contains("--no-batch takes no value"), "{err}");
        assert!(
            opts.engine.batching(),
            "a rejected flag must not flip the engine"
        );
    }

    #[test]
    fn no_batch_disables_engine_batching() {
        let opts = options();
        // The later bogus flag aborts the sweep before any simulation,
        // but `--no-batch` has already taken effect on the engine.
        let err = run_sweep(&["--no-batch", "--bogus", "1"], &opts).unwrap_err();
        assert!(err.contains("unknown sweep flag"), "{err}");
        assert!(!opts.engine.batching());
    }
}
