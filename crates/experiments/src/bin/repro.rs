//! `repro` — regenerate any table or figure of the paper.
//!
//! Usage: `repro <experiment> [--quick]` where
//! `<experiment>` is one of `table1`, `table2`, `table3`, `fig3`,
//! `fig4a`, `fig4b`, `fig4c`, `fig4d`, `fig5c`, `fig7`, `fig8a`,
//! `fig8b`, `fig9a`, `fig9b`, or `all`.

use fuleak_experiments::harness::{run_suite, Budget, SuiteResult};
use fuleak_experiments::{analytic, empirical};
use std::process::ExitCode;

struct Options {
    budget: Budget,
}

fn suite(opts: &Options, l2: u64) -> SuiteResult {
    eprintln!("[repro] simulating the suite (L2 = {l2} cycles)...");
    run_suite(l2, opts.budget)
}

fn run(experiment: &str, opts: &Options, cached: &mut Option<SuiteResult>) -> bool {
    let need_suite = |cached: &mut Option<SuiteResult>| -> SuiteResult {
        if cached.is_none() {
            *cached = Some(suite(opts, 12));
        }
        cached.clone().expect("just inserted")
    };
    match experiment {
        "table1" => println!("Table 1 — OR8 gate characteristics (70 nm)\n{}", analytic::table1().render()),
        "table2" => println!("Table 2 — architectural parameters\n{}", empirical::table2().render()),
        "fig3" => println!(
            "Figure 3 — uncontrolled idle vs sleep mode (500-gate FU)\n{}",
            analytic::fig3_table().render()
        ),
        "fig4a" => println!(
            "Figure 4a — breakeven idle interval vs leakage factor\n{}",
            analytic::fig4a_table().render()
        ),
        "fig4b" => println!(
            "Figure 4b — policies, idle interval = 10 cycles\n{}",
            analytic::fig4_policy_table(10.0, &[0.1, 0.9]).render()
        ),
        "fig4c" => println!(
            "Figure 4c — policies, idle interval = 100 cycles\n{}",
            analytic::fig4_policy_table(100.0, &[0.1, 0.9]).render()
        ),
        "fig4d" => println!(
            "Figure 4d — worst case, idle interval = 1 cycle\n{}",
            analytic::fig4_policy_table(1.0, &[0.5]).render()
        ),
        "fig5c" => println!(
            "Figure 5c — transition energy of the three designs\n{}",
            analytic::fig5c_table().render()
        ),
        "table3" => {
            let s = need_suite(cached);
            println!("Table 3 — benchmarks (measured vs paper)\n{}", empirical::table3(&s).render());
        }
        "fig7" => {
            let s12 = need_suite(cached);
            let s32 = suite(opts, 32);
            println!(
                "Figure 7 — idle-interval distribution\n{}",
                empirical::fig7_table(&[empirical::fig7(&s12), empirical::fig7(&s32)]).render()
            );
            println!(
                "suite-average idle fraction: {:.3} (L2=12; paper: 0.468), {:.3} (L2=32)",
                empirical::fig7(&s12).total_idle_fraction,
                empirical::fig7(&s32).total_idle_fraction
            );
        }
        "fig8a" => {
            let s = need_suite(cached);
            println!(
                "Figure 8a — normalized energy, p = 0.05 (alpha = 0.5)\n{}",
                empirical::fig8_table(&s, 0.05, 0.5).render()
            );
        }
        "fig8b" => {
            let s = need_suite(cached);
            println!(
                "Figure 8b — normalized energy, p = 0.50 (alpha = 0.5)\n{}",
                empirical::fig8_table(&s, 0.5, 0.5).render()
            );
        }
        "fig9a" => {
            let s = need_suite(cached);
            println!(
                "Figure 9a — energy relative to NoOverhead\n{}",
                empirical::fig9a_table(&s).render()
            );
        }
        "fig9b" => {
            let s = need_suite(cached);
            println!(
                "Figure 9b — leakage / total energy\n{}",
                empirical::fig9b_table(&s).render()
            );
        }
        _ => return false,
    }
    true
}

const ALL: [&str; 14] = [
    "table1", "table2", "fig3", "fig4a", "fig4b", "fig4c", "fig4d", "fig5c", "table3", "fig7",
    "fig8a", "fig8b", "fig9a", "fig9b",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let opts = Options {
        budget: if quick { Budget::Quick } else { Budget::Full },
    };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if targets.is_empty() {
        eprintln!("usage: repro <experiment>|all [--quick]");
        eprintln!("experiments: {}", ALL.join(" "));
        return ExitCode::FAILURE;
    }
    let mut cached = None;
    for target in targets {
        if target == "all" {
            for t in ALL {
                run(t, &opts, &mut cached);
            }
        } else if !run(target, &opts, &mut cached) {
            eprintln!("unknown experiment `{target}`; known: {}", ALL.join(" "));
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
