//! Scenario engine: deterministic, cached, parallel execution of
//! simulation points.
//!
//! The paper's experiments all consume the same underlying object — a
//! timing simulation of one benchmark at one FU count, one L2 latency,
//! and one instruction budget. The seed harness re-simulated those
//! points sequentially per experiment; this module makes the point the
//! unit of work:
//!
//! * [`Scenario`] — the value-typed key of one simulation point;
//! * [`SweepSpec`] — a cartesian-product builder (benchmarks × FU
//!   counts × L2 latencies) expanding to a deterministic scenario list;
//! * [`SimCache`] — a concurrent memo table from [`Scenario`] to its
//!   [`SimResult`], so Table 3, Figure 7, Figures 8a/8b, and Figures
//!   9a/9b reuse points instead of re-simulating;
//! * [`Engine`] — a work-stealing executor (std scoped threads over a
//!   shared job queue) that fans uncached points out across cores.
//!
//! The engine also memoizes the *functional* half of each point: a
//! dynamic trace depends only on `(bench, budget)`, so one packed
//! [`EncodedTrace`] per benchmark is captured and replayed across the
//! whole FU-count × L2-latency sweep instead of re-executing the
//! kernel for every microarchitectural variation (`DESIGN.md`).
//!
//! Every simulation is single-threaded and seeded, so a scenario's
//! result is a pure function of its key: the engine is free to run
//! points in any order on any number of workers and still produce
//! bit-identical results — and replaying a cached trace is
//! bit-identical to re-executing the kernel
//! (`tests/tests/determinism.rs` asserts both).

use crate::harness::Budget;
use fuleak_uarch::{CoreConfig, SimResult, Simulator};
use fuleak_workloads::{Benchmark, EncodedTrace};
use std::collections::{HashMap, HashSet, VecDeque};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, tolerating poison: a worker that panicked while
/// holding the lock must not convert every subsequent `lock()` into a
/// secondary panic that masks the root cause. The protected data
/// (memo tables, work queues) is always in a consistent state at any
/// panic point — entries are inserted atomically — so continuing past
/// the poison flag is sound.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The FU counts the paper's selection rule chooses among (Section 4)
/// — the single source for both the default sweep and the harness's
/// selection loop.
pub const FU_CANDIDATES: std::ops::RangeInclusive<usize> = 1..=4;

/// One simulation point: a benchmark at a fixed FU count, L2 latency,
/// and instruction budget. `Copy`, hashable, and totally determines
/// its [`SimResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Benchmark name (must exist in the [`Benchmark`] registry).
    pub bench: &'static str,
    /// Integer functional-unit count (the paper studies 1–4).
    pub fus: usize,
    /// Unified L2 hit latency in cycles (the paper studies 12 and 32).
    pub l2_latency: u64,
    /// Dynamic instruction budget.
    pub budget: Budget,
}

impl Scenario {
    /// Runs the timing simulation for this point, executing the kernel
    /// functionally first. Pure: equal scenarios produce equal results
    /// on any thread. Engine-driven runs use [`Scenario::run_trace`]
    /// with a cached trace instead; the two are bit-identical.
    pub fn run(&self) -> SimResult {
        self.run_trace(&self.capture_trace())
    }

    /// Executes the functional half of this point: the packed dynamic
    /// trace, which depends only on `(bench, budget)` and is therefore
    /// shared across every FU-count and L2-latency variation.
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not a registered benchmark name — build
    /// sweeps through [`SweepSpec`] to get this validated up front.
    pub fn capture_trace(&self) -> EncodedTrace {
        capture_trace(self.bench, self.budget)
    }

    /// Runs the timing simulation for this point over an
    /// already-captured trace (which must be for this scenario's
    /// `(bench, budget)`).
    pub fn run_trace(&self, trace: &EncodedTrace) -> SimResult {
        let mut cfg = CoreConfig::with_int_fus(self.fus);
        cfg.l2.latency = self.l2_latency;
        Simulator::new(cfg)
            .expect("table 2 configuration is valid")
            .run(trace)
    }
}

/// Captures the packed dynamic trace of `bench` at `budget` (see
/// [`Scenario::capture_trace`]).
///
/// # Panics
///
/// Panics if `bench` is not a registered benchmark name.
pub fn capture_trace(bench: &'static str, budget: Budget) -> EncodedTrace {
    let bench = Benchmark::by_name(bench).unwrap_or_else(|| {
        panic!(
            "unknown benchmark `{bench}`; registered: {}",
            registered_names()
        )
    });
    EncodedTrace::capture(&mut bench.instantiate(), budget.instructions())
        .expect("kernels execute without errors")
}

/// Comma-separated registry names, for diagnostics.
fn registered_names() -> String {
    Benchmark::all()
        .iter()
        .map(|b| b.name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// A cartesian sweep over benchmarks × FU counts × L2 latencies at one
/// budget, expanding to a deterministic, duplicate-free scenario list.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    benches: Vec<&'static str>,
    fu_counts: Vec<usize>,
    l2_latencies: Vec<u64>,
    budget: Budget,
}

impl SweepSpec {
    /// The paper's default sweep at the given budget: every registered
    /// benchmark, FU counts 1–4, L2 latency 12.
    pub fn new(budget: Budget) -> Self {
        SweepSpec {
            benches: Benchmark::all().iter().map(|b| b.name).collect(),
            fu_counts: FU_CANDIDATES.collect(),
            l2_latencies: vec![12],
            budget,
        }
    }

    /// Restricts the sweep to the given benchmarks.
    ///
    /// # Panics
    ///
    /// Panics immediately — on the caller's thread, with the name and
    /// the registry listed — if a benchmark is unknown. Validating at
    /// build time keeps the mistake out of the engine's worker pool,
    /// where a panicked worker used to poison the shared cache lock
    /// and surface only as a cascade of secondary `expect` failures.
    pub fn benches(mut self, benches: impl IntoIterator<Item = &'static str>) -> Self {
        self.benches = benches
            .into_iter()
            .inspect(|name| {
                assert!(
                    Benchmark::by_name(name).is_some(),
                    "unknown benchmark `{name}`; registered: {}",
                    registered_names()
                );
            })
            .collect();
        self
    }

    /// Restricts the sweep to the given FU counts.
    pub fn fu_counts(mut self, fus: impl IntoIterator<Item = usize>) -> Self {
        self.fu_counts = fus.into_iter().collect();
        self
    }

    /// Restricts the sweep to the given L2 latencies.
    pub fn l2_latencies(mut self, l2s: impl IntoIterator<Item = u64>) -> Self {
        self.l2_latencies = l2s.into_iter().collect();
        self
    }

    /// Expands the sweep to its scenario list, in deterministic
    /// (bench-major) order, without duplicates.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let capacity = self.benches.len() * self.fu_counts.len() * self.l2_latencies.len();
        let mut seen = HashSet::with_capacity(capacity);
        let mut out = Vec::with_capacity(capacity);
        for &bench in &self.benches {
            for &fus in &self.fu_counts {
                for &l2_latency in &self.l2_latencies {
                    let s = Scenario {
                        bench,
                        fus,
                        l2_latency,
                        budget: self.budget,
                    };
                    if seen.insert(s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }
}

/// A concurrent memo table from [`Scenario`] to its result.
#[derive(Debug, Default)]
pub struct SimCache {
    map: Mutex<HashMap<Scenario, Arc<SimResult>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SimCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SimCache::default()
    }

    /// Returns the cached result for `s`, counting a hit or miss.
    pub fn get(&self, s: &Scenario) -> Option<Arc<SimResult>> {
        let found = lock_unpoisoned(&self.map).get(s).cloned();
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a result, keeping the first insertion if the point was
    /// raced (results are identical by construction, so either is
    /// correct — keeping the first makes the choice deterministic in
    /// effect).
    pub fn insert(&self, s: Scenario, result: Arc<SimResult>) -> Arc<SimResult> {
        lock_unpoisoned(&self.map)
            .entry(s)
            .or_insert(result)
            .clone()
    }

    /// Number of distinct points cached.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.map).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Snapshot of an engine's cache effectiveness, for progress lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Worker threads the engine fans out across.
    pub jobs: usize,
    /// Distinct points simulated and retained.
    pub points: usize,
    /// Cache hits (points served without re-simulation).
    pub hits: usize,
    /// Cache misses (points that had to be simulated).
    pub misses: usize,
}

impl EngineStats {
    /// The work done between an `earlier` snapshot and this one —
    /// what one sweep or suite contributed, as opposed to the
    /// engine's process-cumulative totals.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            jobs: self.jobs,
            points: self.points.saturating_sub(earlier.points),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// A concurrent memo table from `(bench, budget)` to its packed
/// functional trace, shared by every point of an FU × L2 sweep.
#[derive(Debug, Default)]
pub struct TraceCache {
    map: Mutex<HashMap<(&'static str, Budget), Arc<EncodedTrace>>>,
    captures: AtomicUsize,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// The cached trace for `(bench, budget)`, if present.
    pub fn get(&self, bench: &'static str, budget: Budget) -> Option<Arc<EncodedTrace>> {
        lock_unpoisoned(&self.map).get(&(bench, budget)).cloned()
    }

    /// Inserts a trace, keeping the first insertion on a race (traces
    /// are pure functions of the key, so either copy is correct).
    pub fn insert(
        &self,
        bench: &'static str,
        budget: Budget,
        trace: Arc<EncodedTrace>,
    ) -> Arc<EncodedTrace> {
        lock_unpoisoned(&self.map)
            .entry((bench, budget))
            .or_insert(trace)
            .clone()
    }

    /// Number of distinct traces cached.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.map).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Functional executions performed since construction (cache
    /// misses; raced duplicate captures included).
    pub fn captures(&self) -> usize {
        self.captures.load(Ordering::Relaxed)
    }

    /// Total packed bytes held across all cached traces.
    pub fn encoded_bytes(&self) -> usize {
        lock_unpoisoned(&self.map)
            .values()
            .map(|t| t.encoded_bytes())
            .sum()
    }
}

/// Parallel, memoizing scenario executor.
///
/// Construct once, share by reference: every sweep and every lookup
/// goes through the same [`SimCache`] and [`TraceCache`], so repeated
/// experiments reuse both each other's simulated points and the
/// functional traces behind them.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: SimCache,
    traces: TraceCache,
}

impl Default for Engine {
    /// An engine using every available core (same as `Engine::new(0)`).
    fn default() -> Self {
        Engine::new(0)
    }
}

impl Engine {
    /// Creates an engine fanning out across `jobs` worker threads.
    /// `jobs = 0` selects the host's available parallelism.
    pub fn new(jobs: usize) -> Self {
        Engine {
            jobs: effective_jobs(jobs),
            cache: SimCache::new(),
            traces: TraceCache::new(),
        }
    }

    /// An engine that runs every point on the calling thread.
    pub fn sequential() -> Self {
        Engine::new(1)
    }

    /// The worker count this engine fans out across.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The engine's memo table.
    pub fn cache(&self) -> &SimCache {
        &self.cache
    }

    /// The engine's functional-trace memo table.
    pub fn trace_cache(&self) -> &TraceCache {
        &self.traces
    }

    /// The packed trace for `(bench, budget)`, capturing (and caching)
    /// it on the calling thread if missing.
    pub fn trace(&self, bench: &'static str, budget: Budget) -> Arc<EncodedTrace> {
        if let Some(t) = self.traces.get(bench, budget) {
            return t;
        }
        self.traces.captures.fetch_add(1, Ordering::Relaxed);
        self.traces
            .insert(bench, budget, Arc::new(capture_trace(bench, budget)))
    }

    /// Cache-effectiveness snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            jobs: self.jobs,
            points: self.cache.len(),
            hits: self.cache.hits(),
            misses: self.cache.misses(),
        }
    }

    /// Simulates every not-yet-cached point of `spec`, fanning out
    /// across the engine's workers. Returns how many points were
    /// actually simulated (the rest were cache hits).
    pub fn run_sweep(&self, spec: &SweepSpec) -> usize {
        self.prime(&spec.scenarios())
    }

    /// Simulates every not-yet-cached scenario in `scenarios`.
    /// Returns how many points were actually simulated.
    ///
    /// Work splits into two parallel phases: first the missing
    /// functional traces are captured — one per distinct
    /// `(bench, budget)`, however many FU-count × L2-latency points
    /// share it — then every point replays its benchmark's cached
    /// trace through the timing model.
    pub fn prime(&self, scenarios: &[Scenario]) -> usize {
        let mut queued = HashSet::with_capacity(scenarios.len());
        let mut todo: Vec<Scenario> = Vec::new();
        for &s in scenarios {
            if !queued.insert(s) {
                continue; // already queued this round; don't double-count
            }
            if self.cache.get(&s).is_none() {
                todo.push(s);
            }
        }
        let mut trace_keys: Vec<(&'static str, Budget)> = Vec::new();
        let mut seen_keys = HashSet::new();
        for s in &todo {
            let key = (s.bench, s.budget);
            if seen_keys.insert(key) && self.traces.get(key.0, key.1).is_none() {
                trace_keys.push(key);
            }
        }
        self.traces
            .captures
            .fetch_add(trace_keys.len(), Ordering::Relaxed);
        for ((bench, budget), trace) in parallel_map(self.jobs, trace_keys, |(bench, budget)| {
            ((bench, budget), Arc::new(capture_trace(bench, budget)))
        }) {
            self.traces.insert(bench, budget, trace);
        }
        let simulated = todo.len();
        for (s, r) in parallel_map(self.jobs, todo, |s| {
            let trace = self.trace(s.bench, s.budget);
            (s, Arc::new(s.run_trace(&trace)))
        }) {
            self.cache.insert(s, r);
        }
        simulated
    }

    /// Returns the result for one scenario, simulating it on the
    /// calling thread on a cache miss (replaying the benchmark's
    /// cached functional trace, capturing it first if needed).
    pub fn result(&self, s: Scenario) -> Arc<SimResult> {
        if let Some(r) = self.cache.get(&s) {
            return r;
        }
        let trace = self.trace(s.bench, s.budget);
        self.cache.insert(s, Arc::new(s.run_trace(&trace)))
    }
}

/// Resolves a `--jobs`-style worker count: `0` means "all cores".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Applies `f` to every item on a shared-queue worker pool, preserving
/// input order in the output. `jobs = 0` selects the host's available
/// parallelism; `jobs = 1` degenerates to a plain sequential map.
///
/// The experiments use this for CPU-bound post-processing sweeps (e.g.
/// the 20-point technology sweep of Figure 9) whose units of work are
/// not simulation points and therefore bypass the [`SimCache`].
pub fn parallel_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len());
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                // Pop-then-release: the queue lock is held only for
                // the pop, so idle workers steal the next item the
                // moment they finish one. Poison-tolerant locking: if
                // a sibling worker panics, the rest drain the queue
                // normally and the scope re-raises the *original*
                // panic instead of a cascade of lock failures.
                let next = lock_unpoisoned(&queue).pop_front();
                let Some((i, item)) = next else { break };
                let out = f(item);
                lock_unpoisoned(&done).push((i, out));
            });
        }
    });
    let mut done = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    assert_eq!(done.len(), total, "every item produces one output");
    done.sort_by_key(|&(i, _)| i);
    done.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(bench: &'static str, fus: usize) -> Scenario {
        Scenario {
            bench,
            fus,
            l2_latency: 12,
            budget: Budget::Custom(5_000),
        }
    }

    #[test]
    fn sweep_expands_cartesian_product_without_duplicates() {
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "gzip"])
            .fu_counts([1, 4])
            .l2_latencies([12, 12, 32]);
        let scenarios = spec.scenarios();
        assert_eq!(scenarios.len(), 2 * 2 * 2);
        assert_eq!(scenarios[0].bench, "mst"); // bench-major order
        let mut dedup = scenarios.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), scenarios.len());
    }

    #[test]
    fn scenario_run_is_deterministic() {
        let s = tiny("mst", 2);
        let a = s.run();
        let b = s.run();
        assert_eq!(a, b);
    }

    #[test]
    fn engine_caches_points_across_sweeps() {
        let engine = Engine::new(2);
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "gzip"])
            .fu_counts([1, 2]);
        assert_eq!(engine.run_sweep(&spec), 4);
        assert_eq!(engine.run_sweep(&spec), 0); // second sweep: all cached
        assert_eq!(engine.cache().len(), 4);
        // A direct lookup of a swept point must not re-simulate.
        let before = engine.cache().len();
        let _ = engine.result(tiny("mst", 1));
        assert_eq!(engine.cache().len(), before);
    }

    #[test]
    fn parallel_and_sequential_engines_agree() {
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "health"])
            .fu_counts([1, 2, 3, 4]);
        let seq = Engine::sequential();
        let par = Engine::new(4);
        seq.run_sweep(&spec);
        par.run_sweep(&spec);
        for s in spec.scenarios() {
            assert_eq!(*seq.result(s), *par.result(s), "{s:?} diverged");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let squares = parallel_map(4, (0u64..100).collect(), |x| x * x);
        assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
        let seq = parallel_map(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(seq, vec![2, 3, 4]);
        assert!(parallel_map(0, Vec::<u64>::new(), |x| x).is_empty());
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn traces_are_captured_once_per_bench_and_reused() {
        let engine = Engine::new(2);
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "gzip"])
            .fu_counts([1, 2, 3, 4])
            .l2_latencies([12, 32]);
        assert_eq!(engine.run_sweep(&spec), 16);
        // 16 timing points, but only one functional execution per
        // benchmark.
        assert_eq!(engine.trace_cache().len(), 2);
        assert_eq!(engine.trace_cache().captures(), 2);
        assert!(engine.trace_cache().encoded_bytes() > 0);
        // Further sweeps and lazy lookups reuse the cached traces.
        engine.result(tiny("mst", 3));
        let s = Scenario {
            bench: "mst",
            fus: 1,
            l2_latency: 99,
            budget: Budget::Custom(5_000),
        };
        engine.result(s);
        assert_eq!(engine.trace_cache().captures(), 2);
    }

    #[test]
    fn replayed_trace_matches_fresh_execution() {
        let engine = Engine::sequential();
        let s = tiny("health", 2);
        let replayed = engine.result(s);
        assert_eq!(*replayed, s.run(), "cached-trace path diverged");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark `gziip`")]
    fn sweep_spec_rejects_unknown_benchmarks_at_build_time() {
        let _ = SweepSpec::new(Budget::Custom(1_000)).benches(["mst", "gziip"]);
    }

    #[test]
    fn caches_survive_a_poisoned_lock() {
        let engine = Engine::new(2);
        engine.result(tiny("mst", 1));
        // Panic while holding the SimCache lock, as a crashing worker
        // would.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.cache.map.lock().unwrap();
            panic!("worker died mid-insert");
        }));
        assert!(poison.is_err());
        assert!(engine.cache.map.is_poisoned());
        // Later lookups and inserts keep working instead of dying on
        // a secondary `expect("cache lock")`.
        assert_eq!(engine.cache().len(), 1);
        let r = engine.result(tiny("mst", 2));
        assert!(r.cycles > 0);
        assert_eq!(engine.cache().len(), 2);
    }
}
