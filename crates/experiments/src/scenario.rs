//! Scenario engine: deterministic, cached, parallel execution of
//! simulation points over arbitrary machine configurations.
//!
//! The paper's experiments all consume the same underlying object — a
//! timing simulation of one benchmark on one machine at one
//! instruction budget. The seed harness re-simulated those points
//! sequentially per experiment; this module makes the point the unit
//! of work:
//!
//! * [`Scenario`] — the value-typed key of one simulation point: a
//!   benchmark, a canonical [`MachineConfig`] (any Table 2 variant,
//!   not just the paper's FU-count × L2-latency grid), and a budget;
//! * [`SweepSpec`] — a multi-axis cartesian builder (benchmarks ×
//!   any subset of `CoreConfig` axes: FU count, L2 latency, width,
//!   ROB, cache sizes, …) expanding to a deterministic scenario list;
//! * [`SimCache`] — a concurrent memo table from [`Scenario`] to its
//!   [`SimResult`], so Table 3, Figure 7, Figures 8a/8b, and Figures
//!   9a/9b reuse points instead of re-simulating;
//! * [`Engine`] — a work-stealing executor (std scoped threads over a
//!   shared job queue) that fans uncached points out across cores.
//!
//! The engine also memoizes the *functional* half of each point — a
//! dynamic trace depends only on `(bench, budget)`, so one packed
//! [`EncodedTrace`] per benchmark is captured and replayed across the
//! whole machine-configuration sweep — and, since the two-phase
//! split, the *front-end* half too: an [`AnnotationCache`] keyed by
//! `(bench, budget, frontend_fingerprint)` holds each geometry's
//! annotated trace, so a sweep over timing-only axes (FU counts, L2
//! latency, width, ROB, …) annotates each benchmark once and replays
//! the allocation-free timing kernel per point (`DESIGN.md`).
//!
//! On top of the simulation caches sits a fourth, *evaluation* layer:
//! a [`crate::policy::PolicyCache`] memoizing
//! `(scenario, policy form, energy-model fingerprint)` →
//! [`PolicyRun`], and [`SweepSpec`] evaluation axes
//! ([`SweepSpec::axis_policy`], [`SweepSpec::axis_slices`],
//! [`SweepSpec::axis_leak_ratio`], [`SweepSpec::axis_transition_cost`])
//! that multiply *result rows* rather than simulated points — a
//! policy/technology sweep over a warm engine runs no simulation at
//! all (`DESIGN.md` §7).
//!
//! Every simulation is single-threaded and seeded, so a scenario's
//! result is a pure function of its key: the engine is free to run
//! points in any order on any number of workers and still produce
//! bit-identical results — and replaying a cached trace is
//! bit-identical to re-executing the kernel
//! (`tests/tests/determinism.rs` asserts both).

use crate::harness::Budget;
use crate::policy::{default_eval_axes, policy_energy_of, EvalPoint, PolicyCache, PolicyKind};
use crate::store::ResultStore;
use fuleak_core::accounting::PolicyRun;
use fuleak_core::fxhash::{FxHashMap, FxHashSet};
use fuleak_core::policy_eval::PolicyForm;
use fuleak_core::EnergyModel;
use fuleak_uarch::{
    annotate, BatchedKernel, ConfigError, CoreConfig, MachineConfig, SimResult, Simulator,
    TimingKernel, MAX_LANES,
};
use fuleak_workloads::{AnnotatedTrace, Benchmark, EncodedTrace, ExecError};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::hash::Hash;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

thread_local! {
    /// One timing kernel per worker thread: every point the worker
    /// simulates reuses the same scratch allocations through the
    /// kernel's `reset()` path instead of rebuilding predictor and
    /// cache heap structures per point. (`--jobs 1` runs everything on
    /// the calling thread, so a whole `repro all` shares one kernel.)
    static WORKER_KERNEL: RefCell<TimingKernel> = RefCell::new(TimingKernel::new());

    /// One lane-batched kernel per worker thread, for the grouped
    /// replay phase of [`Engine::prime`]: timing siblings (same
    /// `(bench, budget, frontend_fingerprint)`) replay one annotation
    /// traversal across up to [`MAX_LANES`] lanes, reusing the same
    /// per-lane slabs batch after batch.
    static WORKER_BATCHED: RefCell<BatchedKernel> = RefCell::new(BatchedKernel::new());
}

/// Locks a mutex, tolerating poison: a worker that panicked while
/// holding the lock must not convert every subsequent `lock()` into a
/// secondary panic that masks the root cause. The protected data
/// (memo tables, work queues) is always in a consistent state at any
/// panic point — entries are inserted atomically — so continuing past
/// the poison flag is sound.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State of one single-flight computation: pending while the claim
/// owner computes, then done with the published value — or abandoned
/// if the owner unwound before fulfilling, telling waiters to
/// re-claim instead of hanging on a dead computation.
#[derive(Debug)]
enum LatchState<V> {
    Pending,
    Done(V),
    Abandoned,
}

/// The once-latch a single-flight winner publishes through. Losers
/// block on [`Latch::wait`] until the owner either fulfills the value
/// or abandons the flight.
#[derive(Debug)]
pub(crate) struct Latch<V> {
    state: Mutex<LatchState<V>>,
    cv: Condvar,
}

impl<V: Clone> Latch<V> {
    fn new() -> Self {
        Latch {
            state: Mutex::new(LatchState::Pending),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, value: V) {
        *lock_unpoisoned(&self.state) = LatchState::Done(value);
        self.cv.notify_all();
    }

    fn abandon(&self) {
        let mut state = lock_unpoisoned(&self.state);
        if matches!(*state, LatchState::Pending) {
            *state = LatchState::Abandoned;
        }
        drop(state);
        self.cv.notify_all();
    }

    /// Blocks until the flight resolves. `Some` carries the owner's
    /// published value; `None` means the owner abandoned (the caller
    /// should re-claim and possibly compute the value itself).
    pub(crate) fn wait(&self) -> Option<V> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            match &*state {
                LatchState::Pending => {
                    state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                LatchState::Done(v) => return Some(v.clone()),
                LatchState::Abandoned => return None,
            }
        }
    }
}

/// One entry of a single-flight memo map: either a published value or
/// a latch the in-flight owner will publish through.
#[derive(Debug)]
enum Slot<V> {
    Ready(V),
    InFlight(Arc<Latch<V>>),
}

/// Outcome of [`Flight::claim`]: the value is ready, the caller won
/// ownership and must compute-then-fulfill (or abandon), or another
/// thread owns the computation and the caller should wait on its
/// latch.
pub(crate) enum Claim<V> {
    Ready(V),
    Owner,
    Wait(Arc<Latch<V>>),
}

/// A single-flight memo map: per-key once-latches over an Fx map, so
/// concurrent requests for the same key compute the value exactly
/// once — the first claimant becomes the owner, later claimants block
/// on the owner's latch, and everyone observes the same published
/// value. The mechanism layer under [`SimCache`], [`TraceCache`],
/// [`AnnotationCache`], and [`crate::policy::PolicyCache`]; hit/miss
/// accounting stays in those wrappers.
#[derive(Debug)]
pub(crate) struct Flight<K, V> {
    map: Mutex<FxHashMap<K, Slot<V>>>,
}

impl<K, V> Default for Flight<K, V> {
    fn default() -> Self {
        Flight {
            map: Mutex::new(FxHashMap::default()),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Flight<K, V> {
    /// Claims `key`: returns the published value, makes the caller
    /// the computation's owner, or hands back the current owner's
    /// latch to wait on.
    pub(crate) fn claim(&self, key: &K) -> Claim<V> {
        let mut map = lock_unpoisoned(&self.map);
        match map.get(key) {
            Some(Slot::Ready(v)) => Claim::Ready(v.clone()),
            Some(Slot::InFlight(latch)) => Claim::Wait(Arc::clone(latch)),
            None => {
                map.insert(key.clone(), Slot::InFlight(Arc::new(Latch::new())));
                Claim::Owner
            }
        }
    }

    /// Publishes a value, waking any waiters. First-wins on a Ready
    /// slot (values are pure functions of the key, so either copy is
    /// correct — keeping the first makes the choice deterministic in
    /// effect); returns the canonical copy.
    pub(crate) fn fulfill(&self, key: &K, value: V) -> V {
        let mut map = lock_unpoisoned(&self.map);
        match map.get_mut(key) {
            Some(Slot::Ready(existing)) => existing.clone(),
            Some(slot) => {
                let prev = std::mem::replace(slot, Slot::Ready(value.clone()));
                drop(map);
                if let Slot::InFlight(latch) = prev {
                    latch.fulfill(value.clone());
                }
                value
            }
            None => {
                map.insert(key.clone(), Slot::Ready(value.clone()));
                value
            }
        }
    }

    /// Removes an unfulfilled in-flight entry and wakes its waiters
    /// empty-handed, so they re-claim (one becomes the new owner). A
    /// no-op once the flight is fulfilled, which makes unconditional
    /// unwind guards safe: [`FlightGuard`] abandons on drop whether
    /// or not the owner got as far as fulfilling.
    pub(crate) fn abandon(&self, key: &K) {
        let mut map = lock_unpoisoned(&self.map);
        if let Some(Slot::InFlight(_)) = map.get(key) {
            let slot = map.remove(key);
            drop(map);
            if let Some(Slot::InFlight(latch)) = slot {
                latch.abandon();
            }
        }
    }

    /// The published value for `key`, if any; in-flight entries are
    /// invisible (the value does not exist yet).
    pub(crate) fn peek(&self, key: &K) -> Option<V> {
        match lock_unpoisoned(&self.map).get(key) {
            Some(Slot::Ready(v)) => Some(v.clone()),
            _ => None,
        }
    }

    /// Number of published values (in-flight claims excluded).
    pub(crate) fn ready_len(&self) -> usize {
        lock_unpoisoned(&self.map)
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Sums `f` over the published values.
    pub(crate) fn sum_ready(&self, f: impl Fn(&V) -> usize) -> usize {
        lock_unpoisoned(&self.map)
            .values()
            .map(|s| match s {
                Slot::Ready(v) => f(v),
                Slot::InFlight(_) => 0,
            })
            .sum()
    }

    /// An unwind guard over `keys` this caller has claimed as owner:
    /// on drop it abandons every key not fulfilled by then, so
    /// waiters blocked on a panicked owner re-claim instead of
    /// hanging forever. Dropping after fulfillment is a no-op.
    pub(crate) fn guard(&self, keys: Vec<K>) -> FlightGuard<'_, K, V> {
        FlightGuard { flight: self, keys }
    }
}

/// See [`Flight::guard`].
pub(crate) struct FlightGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    flight: &'a Flight<K, V>,
    keys: Vec<K>,
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        for key in &self.keys {
            self.flight.abandon(key);
        }
    }
}

/// The FU counts the paper's selection rule chooses among (Section 4)
/// — the single source for both the default sweep and the harness's
/// selection loop.
pub const FU_CANDIDATES: std::ops::RangeInclusive<usize> = 1..=4;

/// One simulation point: a benchmark on one canonical machine
/// configuration at one instruction budget. Cheaply cloneable
/// (machine configurations are interned `Arc`s), hashable, and
/// totally determines its [`SimResult`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Benchmark name (must exist in the [`Benchmark`] registry).
    pub bench: &'static str,
    /// The machine to simulate on — any validated [`CoreConfig`],
    /// canonicalized.
    pub machine: MachineConfig,
    /// Dynamic instruction budget.
    pub budget: Budget,
}

impl Scenario {
    /// A scenario on an arbitrary machine.
    pub fn new(bench: &'static str, machine: MachineConfig, budget: Budget) -> Self {
        Scenario {
            bench,
            machine,
            budget,
        }
    }

    /// A scenario on the paper's studied grid: Table 2 with the given
    /// integer FU count and L2 hit latency.
    pub fn paper(bench: &'static str, fus: usize, l2_latency: u64, budget: Budget) -> Self {
        Scenario::new(bench, MachineConfig::paper(fus, l2_latency), budget)
    }

    /// The integer FU count of this scenario's machine.
    pub fn int_fus(&self) -> usize {
        self.machine.config().int_fus
    }

    /// The L2 hit latency of this scenario's machine.
    pub fn l2_latency(&self) -> u64 {
        self.machine.config().l2.latency
    }

    /// Runs the timing simulation for this point, executing the kernel
    /// functionally first. Pure: equal scenarios produce equal results
    /// on any thread. Engine-driven runs use [`Scenario::run_trace`]
    /// with a cached trace instead; the two are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownBenchmark`] if `bench` is not a
    /// registered benchmark name, or the underlying [`ExecError`] if
    /// the kernel's functional execution fails.
    pub fn run(&self) -> Result<SimResult, ExecError> {
        Ok(self.run_trace(&self.capture_trace()?))
    }

    /// Executes the functional half of this point: the packed dynamic
    /// trace, which depends only on `(bench, budget)` and is therefore
    /// shared across every machine-configuration variation.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownBenchmark`] for names outside the
    /// registry — build sweeps through [`SweepSpec`] to get this
    /// validated up front.
    pub fn capture_trace(&self) -> Result<EncodedTrace, ExecError> {
        capture_trace(self.bench, self.budget)
    }

    /// Runs the timing simulation for this point over an
    /// already-captured trace (which must be for this scenario's
    /// `(bench, budget)`) through the **direct single-phase path**
    /// ([`Simulator::run`]). Panic-free: the machine configuration
    /// was validated when the [`MachineConfig`] was built.
    ///
    /// The engine instead runs points in two phases (annotate once
    /// per front-end geometry, then the timing kernel); the two paths
    /// are field-exactly equal (`tests/tests/determinism.rs`,
    /// `crates/uarch/tests/twophase_props.rs`), so this remains the
    /// pinned reference implementation.
    pub fn run_trace(&self, trace: &EncodedTrace) -> SimResult {
        Simulator::new(self.machine.config().clone())
            .expect("machine configurations are validated at construction")
            .run(trace)
    }
}

/// Captures the packed dynamic trace of `bench` at `budget` (see
/// [`Scenario::capture_trace`]).
///
/// # Errors
///
/// Returns [`ExecError::UnknownBenchmark`] for unregistered names, or
/// the kernel's own [`ExecError`] if functional execution fails.
pub fn capture_trace(bench: &str, budget: Budget) -> Result<EncodedTrace, ExecError> {
    let bench = Benchmark::by_name(bench).ok_or_else(|| ExecError::UnknownBenchmark {
        name: bench.to_string(),
    })?;
    EncodedTrace::capture(&mut bench.instantiate(), budget.instructions())
}

/// One sweep axis: a named `CoreConfig` field (or field group) and the
/// values it takes. The `apply` function writes one value into a
/// configuration; axes compose by sequential application onto the
/// sweep's base machine.
#[derive(Debug, Clone)]
pub struct Axis {
    /// Canonical axis name (doubles as the result-table column name).
    pub name: &'static str,
    /// The values this axis sweeps, in output order.
    pub values: Vec<u64>,
    /// Writes one axis value into a configuration.
    pub apply: fn(&mut CoreConfig, u64),
}

/// A cartesian sweep over benchmarks × any subset of machine axes at
/// one budget, expanding to a deterministic, duplicate-free scenario
/// list.
///
/// [`SweepSpec::new`] starts on the paper's grid (FU counts 1–4 at a
/// 12-cycle L2); the `axis_*` builders replace or append axes, so any
/// `CoreConfig` dimension — width, ROB size, L1D capacity, memory
/// latency, … — becomes sweepable through the same engine and caches.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    benches: Vec<&'static str>,
    base: MachineConfig,
    axes: Vec<Axis>,
    budget: Budget,
    /// Post-simulation evaluation axes (policy × slices × leakage ×
    /// transition cost). Empty vectors mean "axis not set"; if *any*
    /// of them is set the sweep prices every machine point under the
    /// expanded policy/technology grid, with paper defaults filling
    /// the unset axes (see [`SweepSpec::eval_points`]).
    policies: Vec<PolicyKind>,
    slices: Vec<u32>,
    leaks: Vec<f64>,
    transitions: Vec<f64>,
}

impl SweepSpec {
    /// The paper's default sweep at the given budget: every registered
    /// benchmark, FU counts 1–4, L2 latency 12.
    pub fn new(budget: Budget) -> Self {
        SweepSpec {
            benches: Benchmark::all().iter().map(|b| b.name).collect(),
            base: MachineConfig::baseline(),
            axes: Vec::new(),
            budget,
            policies: Vec::new(),
            slices: Vec::new(),
            leaks: Vec::new(),
            transitions: Vec::new(),
        }
        .axis_int_fus(FU_CANDIDATES)
        .axis_l2_latency([12])
    }

    /// Restricts the sweep to the given benchmarks.
    ///
    /// # Panics
    ///
    /// Panics immediately — on the caller's thread, with the name and
    /// the registry listed — if a benchmark is unknown. Validating at
    /// build time keeps the mistake out of the engine's worker pool,
    /// where a panicked worker used to poison the shared cache lock
    /// and surface only as a cascade of secondary `expect` failures.
    pub fn benches(mut self, benches: impl IntoIterator<Item = &'static str>) -> Self {
        self.benches = benches
            .into_iter()
            .inspect(|name| {
                assert!(
                    Benchmark::by_name(name).is_some(),
                    "unknown benchmark `{name}`; registered: {}",
                    Benchmark::registered_names()
                );
            })
            .collect();
        self
    }

    /// Rebases the sweep on an arbitrary machine: every axis applies
    /// its values on top of this configuration instead of Table 2.
    pub fn base(mut self, base: MachineConfig) -> Self {
        self.base = base;
        self
    }

    /// Sets (or replaces, preserving axis order) a sweep axis. Axes
    /// nest in insertion order, first axis outermost, benchmarks
    /// outermost of all.
    pub fn axis(
        mut self,
        name: &'static str,
        values: impl IntoIterator<Item = u64>,
        apply: fn(&mut CoreConfig, u64),
    ) -> Self {
        let values: Vec<u64> = values.into_iter().collect();
        if let Some(existing) = self.axes.iter_mut().find(|a| a.name == name) {
            existing.values = values;
            existing.apply = apply;
        } else {
            self.axes.push(Axis {
                name,
                values,
                apply,
            });
        }
        self
    }

    /// Sweeps the integer FU count (the paper's Table 3 dimension).
    pub fn axis_int_fus(self, fus: impl IntoIterator<Item = usize>) -> Self {
        self.axis("int_fus", fus.into_iter().map(|f| f as u64), |c, v| {
            c.int_fus = v as usize;
        })
    }

    /// Sweeps the L2 hit latency (the paper's Figure 7 dimension).
    pub fn axis_l2_latency(self, l2s: impl IntoIterator<Item = u64>) -> Self {
        self.axis("l2.latency", l2s, |c, v| c.l2.latency = v)
    }

    /// Sweeps the fetch/decode/issue/commit width.
    pub fn axis_width(self, widths: impl IntoIterator<Item = usize>) -> Self {
        self.axis("width", widths.into_iter().map(|w| w as u64), |c, v| {
            c.width = v as usize;
        })
    }

    /// Sweeps the reorder-buffer capacity.
    pub fn axis_rob(self, robs: impl IntoIterator<Item = usize>) -> Self {
        self.axis("rob_entries", robs.into_iter().map(|r| r as u64), |c, v| {
            c.rob_entries = v as usize;
        })
    }

    /// Sweeps the L1 data-cache capacity in bytes.
    pub fn axis_l1d(self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.axis("l1d.size_bytes", sizes, |c, v| c.l1d.size_bytes = v)
    }

    /// Sweeps the unified L2 capacity in bytes.
    pub fn axis_l2_size(self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.axis("l2.size_bytes", sizes, |c, v| c.l2.size_bytes = v)
    }

    /// Sweeps the main-memory latency in cycles.
    pub fn axis_memory_latency(self, lats: impl IntoIterator<Item = u64>) -> Self {
        self.axis("memory_latency", lats, |c, v| c.memory_latency = v)
    }

    /// Sweeps the outstanding-miss (MSHR) count.
    pub fn axis_mshrs(self, mshrs: impl IntoIterator<Item = usize>) -> Self {
        self.axis("mshrs", mshrs.into_iter().map(|m| m as u64), |c, v| {
            c.mshrs = v as usize;
        })
    }

    /// Sweeps the sleep policy the idle spectra are priced under —
    /// the first *evaluation* axis: policy points multiply the result
    /// rows, not the simulated scenarios, and are served from the
    /// engine's [`PolicyCache`] without re-running the timing kernel.
    pub fn axis_policy(mut self, kinds: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = kinds.into_iter().collect();
        self
    }

    /// Sweeps GradualSleep's slice count (evaluation axis; other
    /// policy families ignore it and are deduplicated across its
    /// values).
    ///
    /// # Panics
    ///
    /// Panics if a slice count is zero — validated at build time like
    /// [`SweepSpec::benches`].
    pub fn axis_slices(mut self, slices: impl IntoIterator<Item = u32>) -> Self {
        self.slices = slices
            .into_iter()
            .inspect(|&s| assert!(s > 0, "GradualSleep requires at least one slice"))
            .collect();
        self
    }

    /// Sweeps the technology leakage factor `p = E_hi / E_D`
    /// (evaluation axis; the paper's Figure 9 technology dimension).
    ///
    /// # Panics
    ///
    /// Panics if a value is not a fraction in `[0, 1]`.
    pub fn axis_leak_ratio(mut self, ps: impl IntoIterator<Item = f64>) -> Self {
        self.leaks = ps
            .into_iter()
            .inspect(|&p| {
                assert!(
                    p.is_finite() && (0.0..=1.0).contains(&p),
                    "leakage factor must lie in [0, 1], got {p}"
                );
            })
            .collect();
        self
    }

    /// Sweeps the per-transition sleep-switch overhead `E_slp / E_D`
    /// (evaluation axis).
    ///
    /// # Panics
    ///
    /// Panics if a value is not a fraction in `[0, 1]`.
    pub fn axis_transition_cost(mut self, costs: impl IntoIterator<Item = f64>) -> Self {
        self.transitions = costs
            .into_iter()
            .inspect(|&c| {
                assert!(
                    c.is_finite() && (0.0..=1.0).contains(&c),
                    "transition cost must lie in [0, 1], got {c}"
                );
            })
            .collect();
        self
    }

    /// Whether any evaluation axis is set — if so, the sweep table
    /// prices every machine point under [`SweepSpec::eval_points`].
    pub fn has_eval_axes(&self) -> bool {
        !(self.policies.is_empty()
            && self.slices.is_empty()
            && self.leaks.is_empty()
            && self.transitions.is_empty())
    }

    /// Expands the evaluation grid — policy × slices × leakage ×
    /// transition cost, in that nesting order — filling unset axes
    /// with the paper defaults (the four Figure 8 policies,
    /// breakeven-many slices, near-term leakage, default overhead)
    /// and dropping duplicates (slice overrides only differentiate
    /// GradualSleep).
    pub fn eval_points(&self) -> Vec<EvalPoint> {
        let (d_policies, d_slices, d_leaks, d_transitions) = default_eval_axes();
        let policies = if self.policies.is_empty() {
            d_policies
        } else {
            self.policies.clone()
        };
        let slices: Vec<Option<u32>> = if self.slices.is_empty() {
            d_slices
        } else {
            self.slices.iter().map(|&s| Some(s)).collect()
        };
        let leaks = if self.leaks.is_empty() {
            d_leaks
        } else {
            self.leaks.clone()
        };
        let transitions = if self.transitions.is_empty() {
            d_transitions
        } else {
            self.transitions.clone()
        };
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for &policy in &policies {
            for &slice_override in &slices {
                for &leak in &leaks {
                    for &transition in &transitions {
                        let point = EvalPoint {
                            policy,
                            slices: slice_override,
                            leak,
                            transition,
                        };
                        if seen.insert(point.key()) {
                            out.push(point);
                        }
                    }
                }
            }
        }
        out
    }

    /// Restricts the sweep to the given FU counts (alias of
    /// [`SweepSpec::axis_int_fus`], kept for the paper-grid callers).
    pub fn fu_counts(self, fus: impl IntoIterator<Item = usize>) -> Self {
        self.axis_int_fus(fus)
    }

    /// Restricts the sweep to the given L2 latencies (alias of
    /// [`SweepSpec::axis_l2_latency`]).
    pub fn l2_latencies(self, l2s: impl IntoIterator<Item = u64>) -> Self {
        self.axis_l2_latency(l2s)
    }

    /// The sweep's axes, in nesting order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The sweep's benchmarks.
    pub fn bench_names(&self) -> &[&'static str] {
        &self.benches
    }

    /// The sweep's instruction budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Expands the sweep to its scenario list, in deterministic order
    /// (benchmarks outermost, then axes in insertion order), without
    /// duplicates. Each scenario carries the axis values that
    /// produced it, so result tables can echo them as columns.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] for the first axis combination
    /// producing an invalid machine (e.g. a zero width), identifying
    /// the offending field.
    pub fn try_expand(&self) -> Result<Vec<(Vec<u64>, Scenario)>, ConfigError> {
        let total: usize =
            self.benches.len() * self.axes.iter().map(|a| a.values.len()).product::<usize>();
        let mut seen = FxHashSet::with_capacity_and_hasher(total, Default::default());
        let mut out = Vec::with_capacity(total);
        let mut combo = vec![0u64; self.axes.len()];
        for &bench in &self.benches {
            self.expand_axes(bench, 0, &mut combo, &mut seen, &mut out)?;
        }
        Ok(out)
    }

    fn expand_axes(
        &self,
        bench: &'static str,
        depth: usize,
        combo: &mut Vec<u64>,
        seen: &mut FxHashSet<Scenario>,
        out: &mut Vec<(Vec<u64>, Scenario)>,
    ) -> Result<(), ConfigError> {
        if depth == self.axes.len() {
            let mut cfg = self.base.config().clone();
            for (axis, &value) in self.axes.iter().zip(combo.iter()) {
                (axis.apply)(&mut cfg, value);
            }
            let s = Scenario::new(bench, MachineConfig::new(cfg)?, self.budget);
            if seen.insert(s.clone()) {
                out.push((combo.clone(), s));
            }
            return Ok(());
        }
        for i in 0..self.axes[depth].values.len() {
            combo[depth] = self.axes[depth].values[i];
            self.expand_axes(bench, depth + 1, combo, seen, out)?;
        }
        Ok(())
    }

    /// Expands the sweep to its scenario list (see
    /// [`SweepSpec::try_expand`]).
    ///
    /// # Panics
    ///
    /// Panics if an axis combination produces an invalid machine; use
    /// [`SweepSpec::try_expand`] to validate user-supplied axes.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.try_expand()
            .unwrap_or_else(|e| panic!("sweep produced an invalid machine: {e}"))
            .into_iter()
            .map(|(_, s)| s)
            .collect()
    }
}

/// A concurrent, single-flight memo table from [`Scenario`] to its
/// result: concurrent requests for the same cold point compute it
/// exactly once — the first claimant simulates, later claimants block
/// on its latch ([`Flight`]).
#[derive(Debug, Default)]
pub struct SimCache {
    flight: Flight<Scenario, Arc<SimResult>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    waits: AtomicUsize,
}

impl SimCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SimCache::default()
    }

    /// Returns the cached result for `s`, counting a hit or miss. A
    /// point still in flight counts as a miss — its value does not
    /// exist yet; use [`SimCache::claim`] (engine-internal) to
    /// participate in the single-flight protocol instead.
    pub fn get(&self, s: &Scenario) -> Option<Arc<SimResult>> {
        match self.flight.peek(s) {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Claims `s` for single-flight computation. Counting: `Ready` is
    /// a hit; `Owner` is a miss (this caller will simulate the point);
    /// `Wait` is a hit plus a wait — the value is served from the
    /// cache once the owner publishes, without duplicating work, so
    /// `hits + misses` stays the number of lookups and
    /// [`EngineStats::simulated`] counts each point once no matter
    /// how many threads raced for it.
    pub(crate) fn claim(&self, s: &Scenario) -> Claim<Arc<SimResult>> {
        let claim = self.flight.claim(s);
        match &claim {
            Claim::Ready(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            Claim::Owner => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            Claim::Wait(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.waits.fetch_add(1, Ordering::Relaxed);
            }
        }
        claim
    }

    /// Publishes a claimed point's result, waking waiters.
    pub(crate) fn fulfill(&self, s: &Scenario, result: Arc<SimResult>) -> Arc<SimResult> {
        self.flight.fulfill(s, result)
    }

    /// Unwind guard abandoning whichever of `keys` this owner never
    /// fulfills (see [`Flight::guard`]).
    pub(crate) fn guard(&self, keys: Vec<Scenario>) -> FlightGuard<'_, Scenario, Arc<SimResult>> {
        self.flight.guard(keys)
    }

    /// Inserts a result, keeping the first insertion if the point was
    /// raced (results are identical by construction, so either is
    /// correct — keeping the first makes the choice deterministic in
    /// effect).
    pub fn insert(&self, s: Scenario, result: Arc<SimResult>) -> Arc<SimResult> {
        self.flight.fulfill(&s, result)
    }

    /// Number of distinct points cached (in-flight claims excluded).
    pub fn len(&self) -> usize {
        self.flight.ready_len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Single-flight waits since construction: lookups that blocked
    /// on another thread's in-flight simulation instead of
    /// duplicating it.
    pub fn waits(&self) -> usize {
        self.waits.load(Ordering::Relaxed)
    }
}

/// Snapshot of an engine's cache effectiveness, for progress lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Worker threads the engine fans out across.
    pub jobs: usize,
    /// Distinct points simulated and retained.
    pub points: usize,
    /// Cache hits (points served without re-simulation).
    pub hits: usize,
    /// Cache misses (points that had to be simulated).
    pub misses: usize,
    /// Distinct functional traces retained.
    pub traces: usize,
    /// Trace-cache hits (replays served without re-execution).
    pub trace_hits: usize,
    /// Functional executions performed (trace-cache misses).
    pub captures: usize,
    /// Distinct trace annotations retained.
    pub annotations: usize,
    /// Annotation-cache hits (points that reused a geometry's
    /// annotated trace).
    pub annotation_hits: usize,
    /// Annotation passes performed (annotation-cache misses).
    pub annotations_built: usize,
    /// Distinct policy evaluations retained.
    pub policy_runs: usize,
    /// Policy-cache hits (evaluations served without re-pricing).
    pub policy_hits: usize,
    /// Policy evaluations performed (policy-cache misses).
    pub policy_misses: usize,
    /// Single-flight waits across all caches: lookups that blocked on
    /// another thread's in-flight computation instead of duplicating
    /// it (sim, trace, annotation, and policy combined).
    pub flight_waits: usize,
    /// Lane batches dispatched to the batched kernel (groups of ≥2
    /// timing siblings, after [`MAX_LANES`] chunking).
    pub batches: usize,
    /// Points simulated inside lane batches (the decode work for all
    /// of them was one trace traversal per batch).
    pub batched_lanes: usize,
    /// Points that fell back to the scalar kernel during primed
    /// sweeps (singleton geometry groups, or batching disabled).
    pub scalar_fallbacks: usize,
    /// Grid-kernel batches the explorer dispatched (one spectrum
    /// traversal pricing a whole policy grid; see [`crate::explore`]).
    pub grid_batches: usize,
    /// Policy points priced through the grid kernel (these bypass the
    /// [`PolicyCache`], so they appear here and not in the policy
    /// counters).
    pub grid_points: u64,
    /// Wall-clock nanoseconds the CLI/daemon attributed to grid
    /// explorations (end-to-end, substrate simulation included).
    pub grid_nanos: u64,
    /// Whether a persistent disk store is attached.
    pub disk: bool,
    /// Disk-store read hits (results served without simulation from a
    /// previous process).
    pub disk_hits: usize,
    /// The sim-kind subset of [`EngineStats::disk_hits`] — the points
    /// whose timing simulation the store made unnecessary.
    pub disk_sim_hits: usize,
    /// Disk-store read misses (absent, stale, or rejected entries).
    pub disk_misses: usize,
    /// Entries written to the disk store.
    pub disk_writes: usize,
    /// Entries evicted from the disk store by garbage collection.
    pub disk_evictions: usize,
}

impl EngineStats {
    /// The work done between an `earlier` snapshot and this one —
    /// what one sweep or suite contributed, as opposed to the
    /// engine's process-cumulative totals.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            jobs: self.jobs,
            points: self.points.saturating_sub(earlier.points),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            traces: self.traces.saturating_sub(earlier.traces),
            trace_hits: self.trace_hits.saturating_sub(earlier.trace_hits),
            captures: self.captures.saturating_sub(earlier.captures),
            annotations: self.annotations.saturating_sub(earlier.annotations),
            annotation_hits: self.annotation_hits.saturating_sub(earlier.annotation_hits),
            annotations_built: self
                .annotations_built
                .saturating_sub(earlier.annotations_built),
            policy_runs: self.policy_runs.saturating_sub(earlier.policy_runs),
            policy_hits: self.policy_hits.saturating_sub(earlier.policy_hits),
            policy_misses: self.policy_misses.saturating_sub(earlier.policy_misses),
            flight_waits: self.flight_waits.saturating_sub(earlier.flight_waits),
            batches: self.batches.saturating_sub(earlier.batches),
            batched_lanes: self.batched_lanes.saturating_sub(earlier.batched_lanes),
            scalar_fallbacks: self
                .scalar_fallbacks
                .saturating_sub(earlier.scalar_fallbacks),
            grid_batches: self.grid_batches.saturating_sub(earlier.grid_batches),
            grid_points: self.grid_points.saturating_sub(earlier.grid_points),
            grid_nanos: self.grid_nanos.saturating_sub(earlier.grid_nanos),
            disk: self.disk,
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            disk_sim_hits: self.disk_sim_hits.saturating_sub(earlier.disk_sim_hits),
            disk_misses: self.disk_misses.saturating_sub(earlier.disk_misses),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
            disk_evictions: self.disk_evictions.saturating_sub(earlier.disk_evictions),
        }
    }

    /// Points actually simulated: sim-cache misses minus the ones the
    /// disk store answered.
    pub fn simulated(&self) -> usize {
        self.misses.saturating_sub(self.disk_sim_hits)
    }

    /// Disk-store hit rate over all lookups, if any were made.
    pub fn disk_hit_rate(&self) -> Option<f64> {
        let total = self.disk_hits + self.disk_misses;
        (total > 0).then(|| self.disk_hits as f64 / total as f64)
    }

    /// Simulation-cache hit rate over all lookups, if any were made.
    pub fn sim_hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Trace-cache hit rate over all lookups, if any were made.
    pub fn trace_hit_rate(&self) -> Option<f64> {
        let total = self.trace_hits + self.captures;
        (total > 0).then(|| self.trace_hits as f64 / total as f64)
    }

    /// Annotation-cache hit rate over all lookups, if any were made.
    pub fn annotation_hit_rate(&self) -> Option<f64> {
        let total = self.annotation_hits + self.annotations_built;
        (total > 0).then(|| self.annotation_hits as f64 / total as f64)
    }

    /// Policy-cache hit rate over all lookups, if any were made.
    pub fn policy_hit_rate(&self) -> Option<f64> {
        let total = self.policy_hits + self.policy_misses;
        (total > 0).then(|| self.policy_hits as f64 / total as f64)
    }

    /// Mean lanes per dispatched batch, if any batches formed.
    pub fn mean_lanes_per_batch(&self) -> Option<f64> {
        (self.batches > 0).then(|| self.batched_lanes as f64 / self.batches as f64)
    }

    /// End-to-end grid throughput in points per second, if any grid
    /// time was attributed.
    pub fn grid_points_per_sec(&self) -> Option<f64> {
        (self.grid_nanos > 0).then(|| self.grid_points as f64 / (self.grid_nanos as f64 * 1e-9))
    }
}

/// A concurrent memo table from `(bench, budget)` to its packed
/// functional trace, shared by every point of a machine sweep.
#[derive(Debug, Default)]
pub struct TraceCache {
    flight: Flight<(&'static str, Budget), Arc<EncodedTrace>>,
    hits: AtomicUsize,
    captures: AtomicUsize,
    waits: AtomicUsize,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// The cached trace for `(bench, budget)`, if present. Counts a
    /// hit so [`TraceCache::hits`] means "replays served from cache".
    pub fn get(&self, bench: &'static str, budget: Budget) -> Option<Arc<EncodedTrace>> {
        let found = self.flight.peek(&(bench, budget));
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Whether a trace is cached, without counting a lookup — for
    /// bookkeeping probes (capture deduplication) that would
    /// otherwise inflate the hit rate.
    pub fn contains(&self, bench: &'static str, budget: Budget) -> bool {
        self.flight.peek(&(bench, budget)).is_some()
    }

    /// Claims `(bench, budget)` for single-flight capture. Hit and
    /// capture counting stays with the caller (mirroring the
    /// `get`/`contains` split: dedup probes claim without counting);
    /// waits are always counted.
    pub(crate) fn claim(&self, bench: &'static str, budget: Budget) -> Claim<Arc<EncodedTrace>> {
        let claim = self.flight.claim(&(bench, budget));
        if matches!(claim, Claim::Wait(_)) {
            self.waits.fetch_add(1, Ordering::Relaxed);
        }
        claim
    }

    /// Publishes a claimed trace, waking waiters.
    pub(crate) fn fulfill(
        &self,
        bench: &'static str,
        budget: Budget,
        trace: Arc<EncodedTrace>,
    ) -> Arc<EncodedTrace> {
        self.flight.fulfill(&(bench, budget), trace)
    }

    /// Unwind guard abandoning whichever of `keys` this owner never
    /// fulfills (see [`Flight::guard`]).
    pub(crate) fn guard(
        &self,
        keys: Vec<(&'static str, Budget)>,
    ) -> FlightGuard<'_, (&'static str, Budget), Arc<EncodedTrace>> {
        self.flight.guard(keys)
    }

    /// Inserts a trace, keeping the first insertion on a race (traces
    /// are pure functions of the key, so either copy is correct).
    pub fn insert(
        &self,
        bench: &'static str,
        budget: Budget,
        trace: Arc<EncodedTrace>,
    ) -> Arc<EncodedTrace> {
        self.flight.fulfill(&(bench, budget), trace)
    }

    /// Number of distinct traces cached (in-flight claims excluded).
    pub fn len(&self) -> usize {
        self.flight.ready_len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Functional executions performed since construction (cache
    /// misses; single-flight makes raced duplicates impossible).
    pub fn captures(&self) -> usize {
        self.captures.load(Ordering::Relaxed)
    }

    /// Single-flight waits since construction.
    pub fn waits(&self) -> usize {
        self.waits.load(Ordering::Relaxed)
    }

    /// Total packed bytes held across all cached traces.
    pub fn encoded_bytes(&self) -> usize {
        self.flight.sum_ready(|t| t.encoded_bytes())
    }
}

/// A concurrent memo table from `(bench, budget, front-end geometry
/// fingerprint)` to the benchmark's annotated trace — the phase-1
/// product shared by every timing-axis variation of a machine (see
/// [`fuleak_uarch::annotate`] and `DESIGN.md`). The paper's FU ×
/// L2-latency grid hits this cache for all but one point per
/// benchmark: FU counts and L2 latencies are timing axes, so the
/// whole grid shares one front-end geometry.
#[derive(Debug, Default)]
pub struct AnnotationCache {
    flight: Flight<(&'static str, Budget, u64), Arc<AnnotatedTrace>>,
    hits: AtomicUsize,
    built: AtomicUsize,
    waits: AtomicUsize,
}

impl AnnotationCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        AnnotationCache::default()
    }

    /// The cached annotation for `(bench, budget, geometry)`, if
    /// present; counts a hit.
    pub fn get(
        &self,
        bench: &'static str,
        budget: Budget,
        geometry: u64,
    ) -> Option<Arc<AnnotatedTrace>> {
        let found = self.flight.peek(&(bench, budget, geometry));
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Whether an annotation is cached, without counting a lookup.
    pub fn contains(&self, bench: &'static str, budget: Budget, geometry: u64) -> bool {
        self.flight.peek(&(bench, budget, geometry)).is_some()
    }

    /// Claims `(bench, budget, geometry)` for single-flight
    /// annotation. Hit and build counting stays with the caller
    /// (dedup probes claim without counting; the disk tier can
    /// fulfill a claim without a build); waits are always counted.
    pub(crate) fn claim(
        &self,
        bench: &'static str,
        budget: Budget,
        geometry: u64,
    ) -> Claim<Arc<AnnotatedTrace>> {
        let claim = self.flight.claim(&(bench, budget, geometry));
        if matches!(claim, Claim::Wait(_)) {
            self.waits.fetch_add(1, Ordering::Relaxed);
        }
        claim
    }

    /// Publishes a claimed annotation, waking waiters.
    pub(crate) fn fulfill(
        &self,
        bench: &'static str,
        budget: Budget,
        geometry: u64,
        ann: Arc<AnnotatedTrace>,
    ) -> Arc<AnnotatedTrace> {
        self.flight.fulfill(&(bench, budget, geometry), ann)
    }

    /// Unwind guard abandoning whichever of `keys` this owner never
    /// fulfills (see [`Flight::guard`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn guard(
        &self,
        keys: Vec<(&'static str, Budget, u64)>,
    ) -> FlightGuard<'_, (&'static str, Budget, u64), Arc<AnnotatedTrace>> {
        self.flight.guard(keys)
    }

    /// Inserts an annotation, keeping the first insertion on a race
    /// (annotations are pure functions of the key).
    pub fn insert(
        &self,
        bench: &'static str,
        budget: Budget,
        geometry: u64,
        ann: Arc<AnnotatedTrace>,
    ) -> Arc<AnnotatedTrace> {
        self.flight.fulfill(&(bench, budget, geometry), ann)
    }

    /// Number of distinct annotations cached (in-flight claims
    /// excluded).
    pub fn len(&self) -> usize {
        self.flight.ready_len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Annotation passes performed since construction (cache misses
    /// the disk tier could not answer; single-flight makes raced
    /// duplicates impossible).
    pub fn built(&self) -> usize {
        self.built.load(Ordering::Relaxed)
    }

    /// Single-flight waits since construction.
    pub fn waits(&self) -> usize {
        self.waits.load(Ordering::Relaxed)
    }

    /// Total packed bytes held across all cached annotations.
    pub fn annotated_bytes(&self) -> usize {
        self.flight.sum_ready(|a| a.annotated_bytes())
    }
}

/// One unit of replay-phase work in [`Engine::prime`]: a lane batch
/// of timing siblings for the batched kernel, or a single point for
/// the scalar reference kernel.
enum ReplayWork {
    Batch(Vec<Scenario>),
    Single(Scenario),
}

/// Parallel, memoizing scenario executor.
///
/// Construct once, share by reference: every sweep and every lookup
/// goes through the same [`SimCache`], [`TraceCache`], and
/// [`AnnotationCache`], so repeated experiments reuse each other's
/// simulated points, the functional traces behind them, and the
/// per-geometry trace annotations in between.
///
/// Points are simulated in **two phases** (`DESIGN.md`): a cached
/// annotation pass per `(bench, budget, front-end geometry)` followed
/// by the allocation-free [`TimingKernel`], one kernel per worker
/// thread with scratch reused across points. The result is
/// field-exactly equal to the direct [`Scenario::run`] path.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: SimCache,
    traces: TraceCache,
    annotations: AnnotationCache,
    policies: PolicyCache,
    /// Whether [`Engine::prime`] may dispatch timing-sibling groups
    /// to the lane-batched kernel (on by default; `--no-batch` forces
    /// the scalar reference path for bisection and CI diffing).
    batching: AtomicBool,
    batches: AtomicUsize,
    batched_lanes: AtomicUsize,
    scalar_fallbacks: AtomicUsize,
    grid_batches: AtomicUsize,
    grid_points: AtomicU64,
    grid_nanos: AtomicU64,
    /// Optional persistent tier behind the sim/annotation/policy
    /// caches: read-through on a memory miss, write-behind on every
    /// computed result. Results are identical with or without it —
    /// the store only changes *where* a pure function's value comes
    /// from.
    store: Mutex<Option<Arc<ResultStore>>>,
}

impl Default for Engine {
    /// An engine using every available core (same as `Engine::new(0)`).
    fn default() -> Self {
        Engine::new(0)
    }
}

impl Engine {
    /// Creates an engine fanning out across `jobs` worker threads.
    /// `jobs = 0` selects the host's available parallelism.
    pub fn new(jobs: usize) -> Self {
        Engine {
            jobs: effective_jobs(jobs),
            cache: SimCache::new(),
            traces: TraceCache::new(),
            annotations: AnnotationCache::new(),
            policies: PolicyCache::new(),
            batching: AtomicBool::new(true),
            batches: AtomicUsize::new(0),
            batched_lanes: AtomicUsize::new(0),
            scalar_fallbacks: AtomicUsize::new(0),
            grid_batches: AtomicUsize::new(0),
            grid_points: AtomicU64::new(0),
            grid_nanos: AtomicU64::new(0),
            store: Mutex::new(None),
        }
    }

    /// Attaches (or, with `None`, detaches) a persistent result
    /// store. The in-memory caches stay authoritative; the store is
    /// consulted on their misses and populated behind their inserts.
    pub fn set_store(&self, store: Option<Arc<ResultStore>>) {
        *lock_unpoisoned(&self.store) = store;
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<Arc<ResultStore>> {
        lock_unpoisoned(&self.store).clone()
    }

    /// Enables or disables lane batching in [`Engine::prime`]. With
    /// batching off every point replays through the scalar reference
    /// kernel; results are field-exactly equal either way (the CI
    /// sweep diff pins it byte-for-byte through the CLI).
    pub fn set_batching(&self, enabled: bool) {
        self.batching.store(enabled, Ordering::Relaxed);
    }

    /// Whether [`Engine::prime`] may use the lane-batched kernel.
    pub fn batching(&self) -> bool {
        self.batching.load(Ordering::Relaxed)
    }

    /// Records one grid-kernel contribution from the explorer:
    /// `batches` spectrum traversals priced `points` policy points
    /// (see [`crate::explore`]). The grid path bypasses the
    /// [`PolicyCache`], so these counters — not the policy-cache
    /// ones — are its footprint in [`EngineStats`].
    pub fn note_grid(&self, batches: usize, points: u64) {
        self.grid_batches.fetch_add(batches, Ordering::Relaxed);
        self.grid_points.fetch_add(points, Ordering::Relaxed);
    }

    /// Attributes wall-clock nanoseconds to the grid path (measured
    /// by the CLI/daemon around a whole exploration, so the derived
    /// [`EngineStats::grid_points_per_sec`] is end-to-end, substrate
    /// simulation included).
    pub fn note_grid_nanos(&self, nanos: u64) {
        self.grid_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// An engine that runs every point on the calling thread.
    pub fn sequential() -> Self {
        Engine::new(1)
    }

    /// The worker count this engine fans out across.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The engine's memo table.
    pub fn cache(&self) -> &SimCache {
        &self.cache
    }

    /// The engine's functional-trace memo table.
    pub fn trace_cache(&self) -> &TraceCache {
        &self.traces
    }

    /// The engine's annotated-trace memo table.
    pub fn annotation_cache(&self) -> &AnnotationCache {
        &self.annotations
    }

    /// The engine's policy-evaluation memo table.
    pub fn policy_cache(&self) -> &PolicyCache {
        &self.policies
    }

    /// Prices one scenario under a policy at a technology point — the
    /// summed-over-FUs [`fuleak_core::accounting::PolicyRun`] of the
    /// spectrum evaluator — memoized in the [`PolicyCache`]. On a
    /// policy-cache miss the scenario's `SimResult` comes from the
    /// [`SimCache`] (simulating on the calling thread only if even
    /// that is missing), so a warm policy/technology sweep never
    /// re-runs the timing kernel.
    ///
    /// # Panics
    ///
    /// Panics if the scenario names an unregistered benchmark (see
    /// [`Engine::result`]).
    pub fn policy_run(&self, s: &Scenario, form: PolicyForm, model: &EnergyModel) -> PolicyRun {
        let model_fp = model.fingerprint();
        loop {
            match self.policies.claim(s, form, model_fp) {
                Claim::Ready(run) => return run,
                Claim::Wait(latch) => {
                    if let Some(run) = latch.wait() {
                        return run;
                    }
                    // Owner abandoned (panicked mid-evaluation):
                    // re-claim; this thread may become the new owner.
                }
                Claim::Owner => break,
            }
        }
        let _guard = self.policies.guard(s.clone(), form, model_fp);
        let store = self.store();
        if let Some(run) = store
            .as_ref()
            .and_then(|st| st.load_policy(s, form, model_fp))
        {
            return self.policies.fulfill(s, form, model_fp, run);
        }
        let sim = self.result(s.clone());
        let run = policy_energy_of(model, form, &sim);
        if let Some(st) = &store {
            st.save_policy(s, form, model_fp, run);
        }
        self.policies.fulfill(s, form, model_fp, run)
    }

    /// The annotated trace for `(bench, budget)` under `machine`'s
    /// front-end geometry, annotating (and caching) it on the calling
    /// thread if missing — capturing the functional trace first if
    /// even that is missing.
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not a registered benchmark name (see
    /// [`Engine::trace`]).
    pub fn annotation(
        &self,
        bench: &'static str,
        budget: Budget,
        machine: &MachineConfig,
    ) -> Arc<AnnotatedTrace> {
        let geometry = machine.frontend_fingerprint();
        loop {
            match self.annotations.claim(bench, budget, geometry) {
                Claim::Ready(a) => {
                    self.annotations.hits.fetch_add(1, Ordering::Relaxed);
                    return a;
                }
                Claim::Wait(latch) => {
                    if let Some(a) = latch.wait() {
                        self.annotations.hits.fetch_add(1, Ordering::Relaxed);
                        return a;
                    }
                }
                Claim::Owner => break,
            }
        }
        let _guard = self.annotations.guard(vec![(bench, budget, geometry)]);
        let store = self.store();
        if let Some(ann) = store
            .as_ref()
            .and_then(|st| st.load_annotation(bench, budget, geometry))
        {
            return self
                .annotations
                .fulfill(bench, budget, geometry, Arc::new(ann));
        }
        self.annotations.built.fetch_add(1, Ordering::Relaxed);
        let trace = self.trace(bench, budget);
        let ann = annotate(machine.config(), &trace);
        if let Some(st) = &store {
            st.save_annotation(bench, budget, geometry, &ann);
        }
        self.annotations
            .fulfill(bench, budget, geometry, Arc::new(ann))
    }

    /// Runs one point through the two-phase path: cached annotation,
    /// then the calling worker's reusable timing kernel.
    fn run_point(&self, s: &Scenario) -> SimResult {
        let ann = self.annotation(s.bench, s.budget, &s.machine);
        WORKER_KERNEL.with(|k| k.borrow_mut().run(&ann, s.machine.config()))
    }

    /// The packed trace for `(bench, budget)`, capturing (and caching)
    /// it on the calling thread if missing.
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not a registered benchmark name — the
    /// engine-internal callers only reach this with names validated
    /// by [`SweepSpec::benches`] or the [`Benchmark`] registry; use
    /// [`Scenario::capture_trace`] for fallible capture.
    pub fn trace(&self, bench: &'static str, budget: Budget) -> Arc<EncodedTrace> {
        loop {
            match self.traces.claim(bench, budget) {
                Claim::Ready(t) => {
                    self.traces.hits.fetch_add(1, Ordering::Relaxed);
                    return t;
                }
                Claim::Wait(latch) => {
                    if let Some(t) = latch.wait() {
                        self.traces.hits.fetch_add(1, Ordering::Relaxed);
                        return t;
                    }
                }
                Claim::Owner => break,
            }
        }
        let _guard = self.traces.guard(vec![(bench, budget)]);
        self.traces.captures.fetch_add(1, Ordering::Relaxed);
        let trace = capture_trace(bench, budget).unwrap_or_else(|e| panic!("{e}"));
        self.traces.fulfill(bench, budget, Arc::new(trace))
    }

    /// Cache-effectiveness snapshot.
    pub fn stats(&self) -> EngineStats {
        let store = self.store();
        EngineStats {
            jobs: self.jobs,
            points: self.cache.len(),
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            traces: self.traces.len(),
            trace_hits: self.traces.hits(),
            captures: self.traces.captures(),
            annotations: self.annotations.len(),
            annotation_hits: self.annotations.hits(),
            annotations_built: self.annotations.built(),
            policy_runs: self.policies.len(),
            policy_hits: self.policies.hits(),
            policy_misses: self.policies.misses(),
            flight_waits: self.cache.waits()
                + self.traces.waits()
                + self.annotations.waits()
                + self.policies.waits(),
            batches: self.batches.load(Ordering::Relaxed),
            batched_lanes: self.batched_lanes.load(Ordering::Relaxed),
            scalar_fallbacks: self.scalar_fallbacks.load(Ordering::Relaxed),
            grid_batches: self.grid_batches.load(Ordering::Relaxed),
            grid_points: self.grid_points.load(Ordering::Relaxed),
            grid_nanos: self.grid_nanos.load(Ordering::Relaxed),
            disk: store.is_some(),
            disk_hits: store.as_ref().map_or(0, |st| st.hits()),
            disk_sim_hits: store
                .as_ref()
                .map_or(0, |st| st.hits_for(crate::store::StoreKind::Sim)),
            disk_misses: store.as_ref().map_or(0, |st| st.misses()),
            disk_writes: store.as_ref().map_or(0, |st| st.writes()),
            disk_evictions: store.as_ref().map_or(0, |st| st.evictions()),
        }
    }

    /// Simulates every not-yet-cached point of `spec`, fanning out
    /// across the engine's workers. Returns how many points were
    /// actually simulated (the rest were cache hits).
    pub fn run_sweep(&self, spec: &SweepSpec) -> usize {
        self.prime(&spec.scenarios())
    }

    /// Simulates every not-yet-cached scenario in `scenarios`.
    /// Returns how many points were actually simulated.
    ///
    /// Work splits into three parallel phases: first the missing
    /// functional traces are captured — one per distinct
    /// `(bench, budget)`, however many machine variants share it —
    /// then each distinct front-end geometry annotates its trace once
    /// (one pass per `(bench, budget, frontend_fingerprint)`), and
    /// finally every point replays its annotation through a worker's
    /// reusable timing kernel.
    pub fn prime(&self, scenarios: &[Scenario]) -> usize {
        let mut queued = FxHashSet::with_capacity_and_hasher(scenarios.len(), Default::default());
        let mut todo: Vec<Scenario> = Vec::new();
        let mut pending: Vec<(Scenario, Arc<Latch<Arc<SimResult>>>)> = Vec::new();
        for s in scenarios {
            if !queued.insert(s.clone()) {
                continue; // already queued this round; don't double-count
            }
            match self.cache.claim(s) {
                Claim::Ready(_) => {}
                Claim::Owner => todo.push(s.clone()),
                // A concurrent caller is already simulating this
                // point: it is not this sweep's work (or its miss),
                // but `prime`'s contract is a warm cache, so block on
                // the owner's latch at the end.
                Claim::Wait(latch) => pending.push((s.clone(), latch)),
            }
        }
        // Unwind safety: every claim this call owns must resolve even
        // if a worker panics below — the guards abandon whatever was
        // not fulfilled, waking waiters to re-claim rather than hang
        // on a dead owner. Abandon is a no-op on fulfilled entries.
        let _sim_guard = self.cache.guard(todo.clone());
        let store = self.store();
        if let Some(st) = &store {
            // Disk read-through for whole points: store hits fill the
            // sim cache directly, so a fully warm store leaves nothing
            // to capture, annotate, or replay — and `prime` returns 0.
            todo = parallel_map(self.jobs, todo, |s| {
                let sim = st.load_sim(&s);
                (s, sim)
            })
            .into_iter()
            .filter_map(|(s, sim)| match sim {
                Some(r) => {
                    self.cache.fulfill(&s, Arc::new(r));
                    None
                }
                None => Some(s),
            })
            .collect();
        }
        let mut ann_work: Vec<(&'static str, Budget, u64, MachineConfig)> = Vec::new();
        let mut seen_geometries = FxHashSet::default();
        for s in &todo {
            let geometry = s.machine.frontend_fingerprint();
            let key = (s.bench, s.budget, geometry);
            if !seen_geometries.insert(key) {
                continue;
            }
            // Owner claims become this sweep's annotation passes.
            // Ready and in-flight geometries are skipped: an
            // in-flight one is being built by a concurrent caller,
            // and the replay phase's `annotation` lookup blocks on
            // its latch if it is still pending by then.
            if matches!(
                self.annotations.claim(s.bench, s.budget, geometry),
                Claim::Owner
            ) {
                ann_work.push((s.bench, s.budget, geometry, s.machine.clone()));
            }
        }
        let _ann_guard = self
            .annotations
            .guard(ann_work.iter().map(|&(b, bu, g, _)| (b, bu, g)).collect());
        if let Some(st) = &store {
            // Disk read-through for annotations, before the trace
            // phase: a geometry served from disk needs no functional
            // trace at all.
            ann_work =
                parallel_map(
                    self.jobs,
                    ann_work,
                    |(bench, budget, geometry, machine)| match st
                        .load_annotation(bench, budget, geometry)
                    {
                        Some(a) => {
                            self.annotations
                                .fulfill(bench, budget, geometry, Arc::new(a));
                            None
                        }
                        None => Some((bench, budget, geometry, machine)),
                    },
                )
                .into_iter()
                .flatten()
                .collect();
        }
        // Functional traces are only consumed by the annotation pass,
        // so capture exactly what the remaining builds need.
        let mut trace_keys: Vec<(&'static str, Budget)> = Vec::new();
        let mut seen_keys = FxHashSet::default();
        for &(bench, budget, _, _) in &ann_work {
            let key = (bench, budget);
            if seen_keys.insert(key) && matches!(self.traces.claim(bench, budget), Claim::Owner) {
                trace_keys.push(key);
            }
        }
        let _trace_guard = self.traces.guard(trace_keys.clone());
        self.traces
            .captures
            .fetch_add(trace_keys.len(), Ordering::Relaxed);
        for ((bench, budget), trace) in parallel_map(self.jobs, trace_keys, |(bench, budget)| {
            let trace = capture_trace(bench, budget).unwrap_or_else(|e| panic!("{e}"));
            ((bench, budget), Arc::new(trace))
        }) {
            self.traces.fulfill(bench, budget, trace);
        }
        self.annotations
            .built
            .fetch_add(ann_work.len(), Ordering::Relaxed);
        for ((bench, budget, geometry), ann) in
            parallel_map(self.jobs, ann_work, |(bench, budget, geometry, machine)| {
                let trace = self.trace(bench, budget);
                let ann = annotate(machine.config(), &trace);
                if let Some(st) = &store {
                    st.save_annotation(bench, budget, geometry, &ann);
                }
                ((bench, budget, geometry), Arc::new(ann))
            })
        {
            self.annotations.fulfill(bench, budget, geometry, ann);
        }
        let simulated = todo.len();
        for (s, r) in parallel_map(self.jobs, self.replay_work(todo), |work| {
            let results = match work {
                ReplayWork::Batch(chunk) => self.run_batch(chunk),
                ReplayWork::Single(s) => {
                    let result = Arc::new(self.run_point(&s));
                    vec![(s, result)]
                }
            };
            if let Some(st) = &store {
                for (s, r) in &results {
                    st.save_sim(s, r);
                }
            }
            results
        })
        .into_iter()
        .flatten()
        {
            self.cache.fulfill(&s, r);
        }
        // Points a concurrent caller claimed first: block until each
        // resolves, so a returned `prime` leaves every requested
        // point servable from cache. If an owner abandoned (panicked)
        // re-claim through `result`, which simulates here if needed.
        for (s, latch) in pending {
            if latch.wait().is_none() {
                let _ = self.result(s);
            }
        }
        simulated
    }

    /// Partitions the replay phase into units of work: scenarios
    /// sharing `(bench, budget, frontend_fingerprint)` — *timing
    /// siblings*, whose replays traverse the same annotation — form
    /// lane batches chunked to [`MAX_LANES`], while singleton groups
    /// (and everything, when batching is disabled) keep the scalar
    /// reference path. Group order follows first occurrence in `todo`,
    /// so the work list is deterministic; results are keyed by
    /// scenario, so dispatch shape never affects output.
    fn replay_work(&self, todo: Vec<Scenario>) -> Vec<ReplayWork> {
        if !self.batching() {
            self.scalar_fallbacks
                .fetch_add(todo.len(), Ordering::Relaxed);
            return todo.into_iter().map(ReplayWork::Single).collect();
        }
        let mut groups: Vec<Vec<Scenario>> = Vec::new();
        let mut index: FxHashMap<(&'static str, Budget, u64), usize> = FxHashMap::default();
        for s in todo {
            let key = (s.bench, s.budget, s.machine.frontend_fingerprint());
            match index.get(&key) {
                Some(&i) => groups[i].push(s),
                None => {
                    index.insert(key, groups.len());
                    groups.push(vec![s]);
                }
            }
        }
        let mut work = Vec::new();
        for group in groups {
            if group.len() < 2 {
                self.scalar_fallbacks
                    .fetch_add(group.len(), Ordering::Relaxed);
                work.extend(group.into_iter().map(ReplayWork::Single));
                continue;
            }
            let mut group = group.into_iter();
            loop {
                let chunk: Vec<Scenario> = group.by_ref().take(MAX_LANES).collect();
                match chunk.len() {
                    0 => break,
                    1 => {
                        // A trailing remainder of one: the batched
                        // kernel would handle it, but the scalar path
                        // is the cheaper single-lane traversal.
                        self.scalar_fallbacks.fetch_add(1, Ordering::Relaxed);
                        work.extend(chunk.into_iter().map(ReplayWork::Single));
                    }
                    n => {
                        self.batches.fetch_add(1, Ordering::Relaxed);
                        self.batched_lanes.fetch_add(n, Ordering::Relaxed);
                        work.push(ReplayWork::Batch(chunk));
                    }
                }
            }
        }
        work
    }

    /// Replays one timing-sibling chunk through the calling worker's
    /// lane-batched kernel: one annotation lookup, one traversal,
    /// one result per lane.
    fn run_batch(&self, chunk: Vec<Scenario>) -> Vec<(Scenario, Arc<SimResult>)> {
        let first = &chunk[0];
        let ann = self.annotation(first.bench, first.budget, &first.machine);
        let cfgs: Vec<CoreConfig> = chunk.iter().map(|s| s.machine.config().clone()).collect();
        let results = WORKER_BATCHED.with(|k| k.borrow_mut().run(&ann, &cfgs));
        chunk
            .into_iter()
            .zip(results)
            .map(|(s, r)| (s, Arc::new(r)))
            .collect()
    }

    /// Returns the result for one scenario, simulating it on the
    /// calling thread on a cache miss (replaying the benchmark's
    /// cached annotation through the worker's timing kernel,
    /// annotating — and capturing the functional trace — first if
    /// needed).
    ///
    /// # Panics
    ///
    /// Panics if the scenario names an unregistered benchmark; use
    /// [`Scenario::run`] for a fallible one-off point.
    pub fn result(&self, s: Scenario) -> Arc<SimResult> {
        loop {
            match self.cache.claim(&s) {
                Claim::Ready(r) => return r,
                Claim::Wait(latch) => {
                    if let Some(r) = latch.wait() {
                        return r;
                    }
                    // Owner abandoned (panicked mid-simulation):
                    // re-claim; this thread may become the new owner.
                }
                Claim::Owner => break,
            }
        }
        let _guard = self.cache.guard(vec![s.clone()]);
        let store = self.store();
        if let Some(sim) = store.as_ref().and_then(|st| st.load_sim(&s)) {
            return self.cache.fulfill(&s, Arc::new(sim));
        }
        let result = Arc::new(self.run_point(&s));
        if let Some(st) = &store {
            st.save_sim(&s, &result);
        }
        self.cache.fulfill(&s, result)
    }
}

/// Resolves a `--jobs`-style worker count: `0` means "all cores".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Applies `f` to every item on a shared-queue worker pool, preserving
/// input order in the output. `jobs = 0` selects the host's available
/// parallelism; `jobs = 1` degenerates to a plain sequential map.
///
/// The experiments use this for CPU-bound post-processing sweeps (e.g.
/// the 20-point technology sweep of Figure 9) whose units of work are
/// not simulation points and therefore bypass the [`SimCache`].
pub fn parallel_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len());
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                // Pop-then-release: the queue lock is held only for
                // the pop, so idle workers steal the next item the
                // moment they finish one. Poison-tolerant locking: if
                // a sibling worker panics, the rest drain the queue
                // normally and the scope re-raises the *original*
                // panic instead of a cascade of lock failures.
                let next = lock_unpoisoned(&queue).pop_front();
                let Some((i, item)) = next else { break };
                let out = f(item);
                lock_unpoisoned(&done).push((i, out));
            });
        }
    });
    let mut done = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    assert_eq!(done.len(), total, "every item produces one output");
    done.sort_by_key(|&(i, _)| i);
    done.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(bench: &'static str, fus: usize) -> Scenario {
        Scenario::paper(bench, fus, 12, Budget::Custom(5_000))
    }

    #[test]
    fn sweep_expands_cartesian_product_without_duplicates() {
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "gzip"])
            .fu_counts([1, 4])
            .l2_latencies([12, 12, 32]);
        let scenarios = spec.scenarios();
        assert_eq!(scenarios.len(), 2 * 2 * 2);
        assert_eq!(scenarios[0].bench, "mst"); // bench-major order
        let mut dedup = scenarios.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), scenarios.len());
    }

    #[test]
    fn sweep_spans_non_paper_axes() {
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst"])
            .axis_int_fus([2])
            .axis_l2_latency([12])
            .axis_width([2, 4])
            .axis_rob([64, 128]);
        let expanded = spec.try_expand().unwrap();
        assert_eq!(expanded.len(), 4);
        // Axis values are echoed combo-for-combo, nested in insertion
        // order (int_fus, l2, width, rob).
        assert_eq!(expanded[0].0, vec![2, 12, 2, 64]);
        assert_eq!(expanded[3].0, vec![2, 12, 4, 128]);
        let machines: FxHashSet<u64> = expanded
            .iter()
            .map(|(_, s)| s.machine.fingerprint())
            .collect();
        assert_eq!(machines.len(), 4, "each combo is a distinct machine");
        // Later axes nest innermost: expanded[1] bumps rob, not width.
        assert_eq!(expanded[1].1.machine.config().width, 2);
        assert_eq!(expanded[1].1.machine.config().rob_entries, 128);
    }

    #[test]
    fn sweep_surfaces_invalid_axis_combinations() {
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst"])
            .axis_width([0]);
        let err = spec.try_expand().unwrap_err();
        assert_eq!(err.field, "width");
    }

    #[test]
    fn replacing_an_axis_preserves_its_position() {
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .axis_l2_latency([32])
            .axis_int_fus([1, 2]);
        let names: Vec<&str> = spec.axes().iter().map(|a| a.name).collect();
        assert_eq!(names, ["int_fus", "l2.latency"]);
        assert_eq!(spec.axes()[0].values, [1, 2]);
        assert_eq!(spec.axes()[1].values, [32]);
    }

    #[test]
    fn scenario_run_is_deterministic() {
        let s = tiny("mst", 2);
        let a = s.run().unwrap();
        let b = s.run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_run_reports_unknown_benchmarks() {
        let s = Scenario::paper("not-a-bench", 2, 12, Budget::Custom(1_000));
        let err = s.run().unwrap_err();
        assert_eq!(
            err,
            ExecError::UnknownBenchmark {
                name: "not-a-bench".to_string()
            }
        );
        assert!(err.to_string().contains("unknown benchmark `not-a-bench`"));
        assert!(err.to_string().contains("gzip"), "registry not listed");
    }

    #[test]
    fn engine_caches_points_across_sweeps() {
        let engine = Engine::new(2);
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "gzip"])
            .fu_counts([1, 2]);
        assert_eq!(engine.run_sweep(&spec), 4);
        assert_eq!(engine.run_sweep(&spec), 0); // second sweep: all cached
        assert_eq!(engine.cache().len(), 4);
        // A direct lookup of a swept point must not re-simulate.
        let before = engine.cache().len();
        let _ = engine.result(tiny("mst", 1));
        assert_eq!(engine.cache().len(), before);
    }

    #[test]
    fn machine_variants_key_the_cache_separately() {
        let engine = Engine::sequential();
        let budget = Budget::Custom(5_000);
        let narrow = Scenario::new(
            "mst",
            MachineConfig::derived(|c| c.width = 2).unwrap(),
            budget,
        );
        let wide = Scenario::new("mst", MachineConfig::baseline(), budget);
        let a = engine.result(narrow.clone());
        let b = engine.result(wide);
        assert_eq!(engine.cache().len(), 2, "variants must not alias");
        assert_ne!(*a, *b, "width change must affect timing");
        // Same machine, rebuilt from scratch: cache hit, same Arc.
        let narrow_again = Scenario::new(
            "mst",
            MachineConfig::derived(|c| c.width = 2).unwrap(),
            budget,
        );
        let c = engine.result(narrow_again);
        assert!(Arc::ptr_eq(&a, &c));
        // And both variants replayed one shared functional trace.
        assert_eq!(engine.trace_cache().captures(), 1);
    }

    #[test]
    fn parallel_and_sequential_engines_agree() {
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "health"])
            .fu_counts([1, 2, 3, 4]);
        let seq = Engine::sequential();
        let par = Engine::new(4);
        seq.run_sweep(&spec);
        par.run_sweep(&spec);
        for s in spec.scenarios() {
            assert_eq!(
                *seq.result(s.clone()),
                *par.result(s.clone()),
                "{s:?} diverged"
            );
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let squares = parallel_map(4, (0u64..100).collect(), |x| x * x);
        assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
        let seq = parallel_map(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(seq, vec![2, 3, 4]);
        assert!(parallel_map(0, Vec::<u64>::new(), |x| x).is_empty());
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn traces_are_captured_once_per_bench_and_reused() {
        let engine = Engine::new(2);
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "gzip"])
            .fu_counts([1, 2, 3, 4])
            .l2_latencies([12, 32]);
        assert_eq!(engine.run_sweep(&spec), 16);
        // 16 timing points, but only one functional execution per
        // benchmark.
        assert_eq!(engine.trace_cache().len(), 2);
        assert_eq!(engine.trace_cache().captures(), 2);
        assert!(engine.trace_cache().encoded_bytes() > 0);
        // Further sweeps and lazy lookups reuse the cached traces.
        engine.result(tiny("mst", 3));
        engine.result(Scenario::paper("mst", 1, 99, Budget::Custom(5_000)));
        assert_eq!(engine.trace_cache().captures(), 2);
    }

    #[test]
    fn replayed_trace_matches_fresh_execution() {
        let engine = Engine::sequential();
        let s = tiny("health", 2);
        let replayed = engine.result(s.clone());
        assert_eq!(*replayed, s.run().unwrap(), "cached-trace path diverged");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark `gziip`")]
    fn sweep_spec_rejects_unknown_benchmarks_at_build_time() {
        let _ = SweepSpec::new(Budget::Custom(1_000)).benches(["mst", "gziip"]);
    }

    #[test]
    fn caches_survive_a_poisoned_lock() {
        let engine = Engine::new(2);
        engine.result(tiny("mst", 1));
        // Panic while holding the SimCache lock, as a crashing worker
        // would.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock_unpoisoned(&engine.cache.flight.map);
            panic!("worker died mid-insert");
        }));
        assert!(poison.is_err());
        assert!(engine.cache.flight.map.is_poisoned());
        // Later lookups and inserts keep working instead of dying on
        // a secondary `expect("cache lock")`.
        assert_eq!(engine.cache().len(), 1);
        let r = engine.result(tiny("mst", 2));
        assert!(r.cycles > 0);
        assert_eq!(engine.cache().len(), 2);
    }

    #[test]
    fn single_flight_losers_block_on_the_winner() {
        let flight: Flight<u32, u64> = Flight::default();
        assert!(matches!(flight.claim(&7), Claim::Owner));
        let Claim::Wait(latch) = flight.claim(&7) else {
            panic!("second claim must wait on the owner");
        };
        std::thread::scope(|scope| {
            scope.spawn(|| assert_eq!(latch.wait(), Some(99)));
            flight.fulfill(&7, 99);
        });
        assert!(matches!(flight.claim(&7), Claim::Ready(99)));
        assert_eq!(flight.ready_len(), 1);
    }

    #[test]
    fn abandoned_flights_wake_waiters_to_reclaim() {
        let flight: Flight<u32, u64> = Flight::default();
        assert!(matches!(flight.claim(&7), Claim::Owner));
        let Claim::Wait(latch) = flight.claim(&7) else {
            panic!("second claim must wait on the owner");
        };
        // In-flight entries are invisible to peeks and counts.
        assert_eq!(flight.peek(&7), None);
        assert_eq!(flight.ready_len(), 0);
        // The owner unwinds without fulfilling: its guard abandons.
        drop(flight.guard(vec![7]));
        assert_eq!(latch.wait(), None, "abandon must wake waiters empty-handed");
        assert!(
            matches!(flight.claim(&7), Claim::Owner),
            "a waiter re-claims ownership after abandon"
        );
        flight.fulfill(&7, 1);
        // A guard dropped after fulfillment must not clobber the value.
        drop(flight.guard(vec![7]));
        assert!(matches!(flight.claim(&7), Claim::Ready(1)));
    }

    #[test]
    fn concurrent_identical_sweeps_simulate_each_point_once() {
        let engine = Engine::new(4);
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "gzip"])
            .fu_counts([1, 2])
            .l2_latencies([12, 32]); // 8 points
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| engine.run_sweep(&spec));
            }
        });
        let stats = engine.stats();
        assert_eq!(
            stats.simulated(),
            8,
            "8 duplicate concurrent sweeps must simulate each point exactly once"
        );
        assert_eq!(stats.points, 8);
        assert_eq!(stats.captures, 2, "one functional execution per bench");
        // And every point equals a sequential engine's.
        let seq = Engine::sequential();
        seq.run_sweep(&spec);
        for s in spec.scenarios() {
            assert_eq!(*engine.result(s.clone()), *seq.result(s), "diverged");
        }
    }
}
