//! Scenario engine: deterministic, cached, parallel execution of
//! simulation points.
//!
//! The paper's experiments all consume the same underlying object — a
//! timing simulation of one benchmark at one FU count, one L2 latency,
//! and one instruction budget. The seed harness re-simulated those
//! points sequentially per experiment; this module makes the point the
//! unit of work:
//!
//! * [`Scenario`] — the value-typed key of one simulation point;
//! * [`SweepSpec`] — a cartesian-product builder (benchmarks × FU
//!   counts × L2 latencies) expanding to a deterministic scenario list;
//! * [`SimCache`] — a concurrent memo table from [`Scenario`] to its
//!   [`SimResult`], so Table 3, Figure 7, Figures 8a/8b, and Figures
//!   9a/9b reuse points instead of re-simulating;
//! * [`Engine`] — a work-stealing executor (std scoped threads over a
//!   shared job queue) that fans uncached points out across cores.
//!
//! Every simulation is single-threaded and seeded, so a scenario's
//! result is a pure function of its key: the engine is free to run
//! points in any order on any number of workers and still produce
//! bit-identical results (`tests/tests/determinism.rs` asserts this).

use crate::harness::Budget;
use fuleak_uarch::{CoreConfig, SimResult, Simulator};
use fuleak_workloads::Benchmark;
use std::collections::{HashMap, HashSet, VecDeque};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The FU counts the paper's selection rule chooses among (Section 4)
/// — the single source for both the default sweep and the harness's
/// selection loop.
pub const FU_CANDIDATES: std::ops::RangeInclusive<usize> = 1..=4;

/// One simulation point: a benchmark at a fixed FU count, L2 latency,
/// and instruction budget. `Copy`, hashable, and totally determines
/// its [`SimResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Benchmark name (must exist in the [`Benchmark`] registry).
    pub bench: &'static str,
    /// Integer functional-unit count (the paper studies 1–4).
    pub fus: usize,
    /// Unified L2 hit latency in cycles (the paper studies 12 and 32).
    pub l2_latency: u64,
    /// Dynamic instruction budget.
    pub budget: Budget,
}

impl Scenario {
    /// Runs the timing simulation for this point. Pure: equal
    /// scenarios produce equal results on any thread.
    pub fn run(&self) -> SimResult {
        let bench = Benchmark::by_name(self.bench).expect("scenario names a registered benchmark");
        let mut cfg = CoreConfig::with_int_fus(self.fus);
        cfg.l2.latency = self.l2_latency;
        let mut machine = bench.instantiate();
        let trace = machine
            .run(self.budget.instructions())
            .map(|r| r.expect("kernels execute without errors"));
        Simulator::new(cfg)
            .expect("table 2 configuration is valid")
            .run(trace)
    }
}

/// A cartesian sweep over benchmarks × FU counts × L2 latencies at one
/// budget, expanding to a deterministic, duplicate-free scenario list.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    benches: Vec<&'static str>,
    fu_counts: Vec<usize>,
    l2_latencies: Vec<u64>,
    budget: Budget,
}

impl SweepSpec {
    /// The paper's default sweep at the given budget: every registered
    /// benchmark, FU counts 1–4, L2 latency 12.
    pub fn new(budget: Budget) -> Self {
        SweepSpec {
            benches: Benchmark::all().iter().map(|b| b.name).collect(),
            fu_counts: FU_CANDIDATES.collect(),
            l2_latencies: vec![12],
            budget,
        }
    }

    /// Restricts the sweep to the given benchmarks.
    pub fn benches(mut self, benches: impl IntoIterator<Item = &'static str>) -> Self {
        self.benches = benches.into_iter().collect();
        self
    }

    /// Restricts the sweep to the given FU counts.
    pub fn fu_counts(mut self, fus: impl IntoIterator<Item = usize>) -> Self {
        self.fu_counts = fus.into_iter().collect();
        self
    }

    /// Restricts the sweep to the given L2 latencies.
    pub fn l2_latencies(mut self, l2s: impl IntoIterator<Item = u64>) -> Self {
        self.l2_latencies = l2s.into_iter().collect();
        self
    }

    /// Expands the sweep to its scenario list, in deterministic
    /// (bench-major) order, without duplicates.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let capacity = self.benches.len() * self.fu_counts.len() * self.l2_latencies.len();
        let mut seen = HashSet::with_capacity(capacity);
        let mut out = Vec::with_capacity(capacity);
        for &bench in &self.benches {
            for &fus in &self.fu_counts {
                for &l2_latency in &self.l2_latencies {
                    let s = Scenario {
                        bench,
                        fus,
                        l2_latency,
                        budget: self.budget,
                    };
                    if seen.insert(s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }
}

/// A concurrent memo table from [`Scenario`] to its result.
#[derive(Debug, Default)]
pub struct SimCache {
    map: Mutex<HashMap<Scenario, Arc<SimResult>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SimCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SimCache::default()
    }

    /// Returns the cached result for `s`, counting a hit or miss.
    pub fn get(&self, s: &Scenario) -> Option<Arc<SimResult>> {
        let found = self.map.lock().expect("cache lock").get(s).cloned();
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a result, keeping the first insertion if the point was
    /// raced (results are identical by construction, so either is
    /// correct — keeping the first makes the choice deterministic in
    /// effect).
    pub fn insert(&self, s: Scenario, result: Arc<SimResult>) -> Arc<SimResult> {
        self.map
            .lock()
            .expect("cache lock")
            .entry(s)
            .or_insert(result)
            .clone()
    }

    /// Number of distinct points cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Snapshot of an engine's cache effectiveness, for progress lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Worker threads the engine fans out across.
    pub jobs: usize,
    /// Distinct points simulated and retained.
    pub points: usize,
    /// Cache hits (points served without re-simulation).
    pub hits: usize,
    /// Cache misses (points that had to be simulated).
    pub misses: usize,
}

impl EngineStats {
    /// The work done between an `earlier` snapshot and this one —
    /// what one sweep or suite contributed, as opposed to the
    /// engine's process-cumulative totals.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            jobs: self.jobs,
            points: self.points.saturating_sub(earlier.points),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// Parallel, memoizing scenario executor.
///
/// Construct once, share by reference: every sweep and every lookup
/// goes through the same [`SimCache`], so repeated experiments reuse
/// each other's points.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: SimCache,
}

impl Default for Engine {
    /// An engine using every available core (same as `Engine::new(0)`).
    fn default() -> Self {
        Engine::new(0)
    }
}

impl Engine {
    /// Creates an engine fanning out across `jobs` worker threads.
    /// `jobs = 0` selects the host's available parallelism.
    pub fn new(jobs: usize) -> Self {
        Engine {
            jobs: effective_jobs(jobs),
            cache: SimCache::new(),
        }
    }

    /// An engine that runs every point on the calling thread.
    pub fn sequential() -> Self {
        Engine::new(1)
    }

    /// The worker count this engine fans out across.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The engine's memo table.
    pub fn cache(&self) -> &SimCache {
        &self.cache
    }

    /// Cache-effectiveness snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            jobs: self.jobs,
            points: self.cache.len(),
            hits: self.cache.hits(),
            misses: self.cache.misses(),
        }
    }

    /// Simulates every not-yet-cached point of `spec`, fanning out
    /// across the engine's workers. Returns how many points were
    /// actually simulated (the rest were cache hits).
    pub fn run_sweep(&self, spec: &SweepSpec) -> usize {
        self.prime(&spec.scenarios())
    }

    /// Simulates every not-yet-cached scenario in `scenarios`.
    /// Returns how many points were actually simulated.
    pub fn prime(&self, scenarios: &[Scenario]) -> usize {
        let mut queued = HashSet::with_capacity(scenarios.len());
        let mut todo: Vec<Scenario> = Vec::new();
        for &s in scenarios {
            if !queued.insert(s) {
                continue; // already queued this round; don't double-count
            }
            if self.cache.get(&s).is_none() {
                todo.push(s);
            }
        }
        let simulated = todo.len();
        for (s, r) in parallel_map(self.jobs, todo, |s| (s, Arc::new(s.run()))) {
            self.cache.insert(s, r);
        }
        simulated
    }

    /// Returns the result for one scenario, simulating it on the
    /// calling thread on a cache miss.
    pub fn result(&self, s: Scenario) -> Arc<SimResult> {
        if let Some(r) = self.cache.get(&s) {
            return r;
        }
        self.cache.insert(s, Arc::new(s.run()))
    }
}

/// Resolves a `--jobs`-style worker count: `0` means "all cores".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Applies `f` to every item on a shared-queue worker pool, preserving
/// input order in the output. `jobs = 0` selects the host's available
/// parallelism; `jobs = 1` degenerates to a plain sequential map.
///
/// The experiments use this for CPU-bound post-processing sweeps (e.g.
/// the 20-point technology sweep of Figure 9) whose units of work are
/// not simulation points and therefore bypass the [`SimCache`].
pub fn parallel_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len());
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                // Pop-then-release: the queue lock is held only for
                // the pop, so idle workers steal the next item the
                // moment they finish one.
                let next = queue.lock().expect("queue lock").pop_front();
                let Some((i, item)) = next else { break };
                let out = f(item);
                done.lock().expect("done lock").push((i, out));
            });
        }
    });
    let mut done = done.into_inner().expect("workers finished");
    assert_eq!(done.len(), total, "every item produces one output");
    done.sort_by_key(|&(i, _)| i);
    done.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(bench: &'static str, fus: usize) -> Scenario {
        Scenario {
            bench,
            fus,
            l2_latency: 12,
            budget: Budget::Custom(5_000),
        }
    }

    #[test]
    fn sweep_expands_cartesian_product_without_duplicates() {
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "gzip"])
            .fu_counts([1, 4])
            .l2_latencies([12, 12, 32]);
        let scenarios = spec.scenarios();
        assert_eq!(scenarios.len(), 2 * 2 * 2);
        assert_eq!(scenarios[0].bench, "mst"); // bench-major order
        let mut dedup = scenarios.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), scenarios.len());
    }

    #[test]
    fn scenario_run_is_deterministic() {
        let s = tiny("mst", 2);
        let a = s.run();
        let b = s.run();
        assert_eq!(a, b);
    }

    #[test]
    fn engine_caches_points_across_sweeps() {
        let engine = Engine::new(2);
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "gzip"])
            .fu_counts([1, 2]);
        assert_eq!(engine.run_sweep(&spec), 4);
        assert_eq!(engine.run_sweep(&spec), 0); // second sweep: all cached
        assert_eq!(engine.cache().len(), 4);
        // A direct lookup of a swept point must not re-simulate.
        let before = engine.cache().len();
        let _ = engine.result(tiny("mst", 1));
        assert_eq!(engine.cache().len(), before);
    }

    #[test]
    fn parallel_and_sequential_engines_agree() {
        let spec = SweepSpec::new(Budget::Custom(5_000))
            .benches(["mst", "health"])
            .fu_counts([1, 2, 3, 4]);
        let seq = Engine::sequential();
        let par = Engine::new(4);
        seq.run_sweep(&spec);
        par.run_sweep(&spec);
        for s in spec.scenarios() {
            assert_eq!(*seq.result(s), *par.result(s), "{s:?} diverged");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let squares = parallel_map(4, (0u64..100).collect(), |x| x * x);
        assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
        let seq = parallel_map(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(seq, vec![2, 3, 4]);
        assert!(parallel_map(0, Vec::<u64>::new(), |x| x).is_empty());
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }
}
