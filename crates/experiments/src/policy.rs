//! The policy/technology evaluation axes of the experiment layer.
//!
//! A simulation point fixes a benchmark and a machine; which sleep
//! policy prices its idle spectra, and at which technology point, is
//! a *post-simulation* choice. This module makes that choice a value:
//!
//! * [`PolicyKind`] — the policy families of Figures 8/9 plus the
//!   paper's two extension controllers, resolvable to a concrete
//!   [`PolicyForm`] given an energy model (GradualSleep defaults to
//!   breakeven-many slices, the extensions derive their parameters
//!   from the breakeven interval);
//! * [`EvalPoint`] — one cell of the policy × slices × leakage ×
//!   transition-cost design space, buildable into its [`EnergyModel`];
//! * [`PolicyCache`] — a concurrent memo table from
//!   `(scenario, policy form, energy-model fingerprint)` to the
//!   summed-over-FUs [`PolicyRun`], the engine's fourth cache layer:
//!   a policy/technology sweep over already-simulated scenarios never
//!   re-runs the timing kernel and never re-prices a point it has
//!   seen.
//!
//! Pricing itself is [`fuleak_core::policy_eval::spectrum_run`] — the
//! closed-form evaluator over each FU's `IntervalSpectrum` — so one
//! evaluation is O(distinct interval lengths) per FU for the
//! order-free families, and O(total intervals) for the
//! history-dependent AdaptiveSleep (canonical ascending order, O(1)
//! per interval).

use crate::scenario::{Claim, Flight, FlightGuard, Scenario};
use fuleak_core::accounting::PolicyRun;
use fuleak_core::policy_eval::{spectrum_run, PolicyForm};
use fuleak_core::tech::{DEFAULT_DUTY_CYCLE, DEFAULT_LEAK_RATIO, DEFAULT_SLEEP_OVERHEAD};
use fuleak_core::{breakeven_interval, EnergyModel, ModelError, TechnologyParams};
use fuleak_uarch::SimResult;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The activity factor every policy/technology sweep prices at — the
/// paper's empirical experiments fix `alpha = 0.5`.
pub const EVAL_ALPHA: f64 = 0.5;

/// The EWMA weight [`PolicyKind::AdaptiveSleep`] resolves to (the
/// default suggested by `fuleak_core::policy::AdaptiveSleep`).
pub const ADAPTIVE_WEIGHT: f64 = 0.25;

/// Policy selector for the empirical experiments: the four policies
/// of Figures 8/9 plus the two extension controllers the paper argues
/// are not worth their complexity (`repro policy-ext`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Sleep on every idle cycle.
    MaxSleep,
    /// Staggered slices (breakeven-many by default, per the paper).
    GradualSleep,
    /// Clock gating only.
    AlwaysActive,
    /// The unachievable lower bound.
    NoOverhead,
    /// Wait a breakeven-interval timeout before sleeping.
    TimeoutSleep,
    /// Predict interval lengths; sleep immediately only when the
    /// prediction clears the breakeven.
    AdaptiveSleep,
}

impl PolicyKind {
    /// The four policies of Figures 8 and 9, in bar order.
    pub const PAPER: [PolicyKind; 4] = [
        PolicyKind::MaxSleep,
        PolicyKind::GradualSleep,
        PolicyKind::AlwaysActive,
        PolicyKind::NoOverhead,
    ];

    /// Every policy family, extensions last.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::MaxSleep,
        PolicyKind::GradualSleep,
        PolicyKind::AlwaysActive,
        PolicyKind::NoOverhead,
        PolicyKind::TimeoutSleep,
        PolicyKind::AdaptiveSleep,
    ];

    /// The display name (matches the controllers').
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::MaxSleep => "MaxSleep",
            PolicyKind::GradualSleep => "GradualSleep",
            PolicyKind::AlwaysActive => "AlwaysActive",
            PolicyKind::NoOverhead => "NoOverhead",
            PolicyKind::TimeoutSleep => "TimeoutSleep",
            PolicyKind::AdaptiveSleep => "AdaptiveSleep",
        }
    }

    /// Parses a (case-insensitive) policy name as the `repro sweep
    /// --policy` flag accepts it; `timeout` and `adaptive` are
    /// shorthands for the extension policies.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "maxsleep" => Some(PolicyKind::MaxSleep),
            "gradualsleep" | "gradual" => Some(PolicyKind::GradualSleep),
            "alwaysactive" => Some(PolicyKind::AlwaysActive),
            "nooverhead" => Some(PolicyKind::NoOverhead),
            "timeoutsleep" | "timeout" => Some(PolicyKind::TimeoutSleep),
            "adaptivesleep" | "adaptive" => Some(PolicyKind::AdaptiveSleep),
            _ => None,
        }
    }

    /// The names [`PolicyKind::parse`] accepts, for error messages.
    pub fn known_names() -> String {
        Self::ALL
            .iter()
            .map(|k| k.name().to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Resolves the family to a concrete [`PolicyForm`] at `model`'s
    /// technology point. `slices` overrides GradualSleep's slice
    /// count (the default is breakeven-many, clamped to `[1, 1024]`,
    /// exactly as Figures 8/9 configure it); the extensions derive
    /// their timeout/prediction parameters from the breakeven
    /// interval.
    pub fn form(self, model: &EnergyModel, slices: Option<u32>) -> PolicyForm {
        match self {
            PolicyKind::MaxSleep => PolicyForm::MaxSleep,
            PolicyKind::AlwaysActive => PolicyForm::AlwaysActive,
            PolicyKind::NoOverhead => PolicyForm::NoOverhead,
            PolicyKind::GradualSleep => PolicyForm::GradualSleep {
                slices: slices
                    .unwrap_or_else(|| breakeven_interval(model).round().clamp(1.0, 1024.0) as u32),
            },
            PolicyKind::TimeoutSleep => PolicyForm::TimeoutSleep {
                // Tolerate one breakeven interval of uncontrolled
                // idle before committing to sleep.
                timeout: breakeven_interval(model).round().clamp(1.0, 1e9) as u64,
            },
            PolicyKind::AdaptiveSleep => PolicyForm::AdaptiveSleep {
                breakeven: breakeven_interval(model).clamp(1e-6, 1e9),
                weight: ADAPTIVE_WEIGHT,
            },
        }
    }
}

/// One cell of the policy/technology design space: a policy family,
/// an optional GradualSleep slice override, and the two energy-model
/// knobs the paper sweeps — the leakage factor `p = E_hi / E_D` (the
/// Figure 9 technology axis) and the per-transition sleep-switch
/// overhead `E_slp / E_D`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    /// The policy family.
    pub policy: PolicyKind,
    /// GradualSleep slice override (`None` = breakeven-many).
    pub slices: Option<u32>,
    /// Leakage factor `p` in `[0, 1]`.
    pub leak: f64,
    /// Sleep-switch overhead fraction `E_slp / E_D` in `[0, 1]`.
    pub transition: f64,
}

impl EvalPoint {
    /// Builds the point's energy model (paper defaults for `k` and
    /// the duty cycle, [`EVAL_ALPHA`] activity).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFraction`] if `leak` or
    /// `transition` falls outside `[0, 1]`.
    pub fn model(&self) -> Result<EnergyModel, ModelError> {
        let tech = TechnologyParams::new(
            self.leak,
            DEFAULT_LEAK_RATIO,
            self.transition,
            DEFAULT_DUTY_CYCLE,
        )?;
        EnergyModel::new(tech, EVAL_ALPHA)
    }

    /// A dedup key: the slice override only matters for GradualSleep,
    /// so e.g. MaxSleep at 4 slices and at 8 slices are the same
    /// point (`f64` knobs compare by bit pattern).
    pub fn key(&self) -> (PolicyKind, Option<u32>, u64, u64) {
        let slices = match self.policy {
            PolicyKind::GradualSleep => self.slices,
            _ => None,
        };
        (
            self.policy,
            slices,
            self.leak.to_bits(),
            self.transition.to_bits(),
        )
    }
}

/// The default value lists an eval axis falls back to when the sweep
/// sets some other eval axis but not this one: the paper's four
/// policies, breakeven-many slices, near-term leakage, and the
/// default sleep overhead.
pub fn default_eval_axes() -> (Vec<PolicyKind>, Vec<Option<u32>>, Vec<f64>, Vec<f64>) {
    (
        PolicyKind::PAPER.to_vec(),
        vec![None],
        vec![TechnologyParams::near_term().leakage_factor()],
        vec![DEFAULT_SLEEP_OVERHEAD],
    )
}

/// Prices one simulated point under a policy: the spectrum evaluator
/// applied per FU and summed — the same quantity
/// [`crate::empirical::benchmark_energy`] reports, in units of the
/// per-FU `E_D`.
pub fn policy_energy_of(model: &EnergyModel, form: PolicyForm, sim: &SimResult) -> PolicyRun {
    let mut total = PolicyRun::default();
    for (fu, spectrum) in sim.fu_idle.iter().enumerate() {
        total += spectrum_run(model, form, sim.fu_active[fu], spectrum);
    }
    total
}

/// A concurrent memo table from `(scenario, policy form, energy-model
/// fingerprint)` to the scenario's summed-over-FUs [`PolicyRun`] —
/// the engine's fourth cache layer, sitting on top of the
/// `SimCache`. Keyed by the *resolved* [`PolicyForm`] (slice counts
/// and breakeven-derived parameters included) and by
/// [`EnergyModel::fingerprint`], so distinct technology points never
/// alias.
#[derive(Debug, Default)]
pub struct PolicyCache {
    flight: Flight<(Scenario, PolicyForm, u64), PolicyRun>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    waits: AtomicUsize,
}

impl PolicyCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PolicyCache::default()
    }

    /// The cached run for a key, counting a hit or miss. An in-flight
    /// evaluation counts as a miss (its value does not exist yet);
    /// use [`PolicyCache::claim`] (engine-internal) to participate in
    /// the single-flight protocol instead.
    pub fn get(&self, scenario: &Scenario, form: PolicyForm, model_fp: u64) -> Option<PolicyRun> {
        let found = self.flight.peek(&(scenario.clone(), form, model_fp));
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Claims a key for single-flight evaluation. Counting mirrors
    /// [`crate::scenario::SimCache::claim`]: `Ready` is a hit,
    /// `Owner` a miss (this caller evaluates), `Wait` a hit plus a
    /// wait.
    pub(crate) fn claim(
        &self,
        scenario: &Scenario,
        form: PolicyForm,
        model_fp: u64,
    ) -> Claim<PolicyRun> {
        let claim = self.flight.claim(&(scenario.clone(), form, model_fp));
        match &claim {
            Claim::Ready(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            Claim::Owner => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            Claim::Wait(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.waits.fetch_add(1, Ordering::Relaxed);
            }
        }
        claim
    }

    /// Publishes a claimed evaluation, waking waiters.
    pub(crate) fn fulfill(
        &self,
        scenario: &Scenario,
        form: PolicyForm,
        model_fp: u64,
        run: PolicyRun,
    ) -> PolicyRun {
        self.flight
            .fulfill(&(scenario.clone(), form, model_fp), run)
    }

    /// Unwind guard abandoning the claim if the owner never fulfills
    /// it (see [`crate::scenario::Flight::guard`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn guard(
        &self,
        scenario: Scenario,
        form: PolicyForm,
        model_fp: u64,
    ) -> FlightGuard<'_, (Scenario, PolicyForm, u64), PolicyRun> {
        self.flight.guard(vec![(scenario, form, model_fp)])
    }

    /// Inserts a run, keeping the first insertion if the point was
    /// raced (evaluations are pure functions of the key).
    pub fn insert(
        &self,
        scenario: Scenario,
        form: PolicyForm,
        model_fp: u64,
        run: PolicyRun,
    ) -> PolicyRun {
        self.flight.fulfill(&(scenario, form, model_fp), run)
    }

    /// Number of distinct policy evaluations cached (in-flight claims
    /// excluded).
    pub fn len(&self) -> usize {
        self.flight.ready_len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Single-flight waits since construction: lookups that blocked
    /// on another thread's in-flight evaluation instead of
    /// duplicating it.
    pub fn waits(&self) -> usize {
        self.waits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuleak_core::IntervalSpectrum;

    fn near_term_model() -> EnergyModel {
        EnergyModel::new(TechnologyParams::near_term(), EVAL_ALPHA).unwrap()
    }

    #[test]
    fn parse_accepts_every_family_case_insensitively() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(
                PolicyKind::parse(&kind.name().to_ascii_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(PolicyKind::parse("timeout"), Some(PolicyKind::TimeoutSleep));
        assert_eq!(
            PolicyKind::parse("adaptive"),
            Some(PolicyKind::AdaptiveSleep)
        );
        assert_eq!(PolicyKind::parse("napmode"), None);
        assert!(PolicyKind::known_names().contains("gradualsleep"));
    }

    #[test]
    fn gradual_form_defaults_to_breakeven_slices_and_accepts_overrides() {
        let m = near_term_model();
        let be = breakeven_interval(&m).round() as u32;
        assert_eq!(
            PolicyKind::GradualSleep.form(&m, None),
            PolicyForm::GradualSleep { slices: be }
        );
        assert_eq!(
            PolicyKind::GradualSleep.form(&m, Some(8)),
            PolicyForm::GradualSleep { slices: 8 }
        );
        // The override is meaningless to other families.
        assert_eq!(PolicyKind::MaxSleep.form(&m, Some(8)), PolicyForm::MaxSleep);
    }

    #[test]
    fn eval_point_models_and_dedups() {
        let p = EvalPoint {
            policy: PolicyKind::MaxSleep,
            slices: Some(4),
            leak: 0.5,
            transition: 0.01,
        };
        let m = p.model().unwrap();
        assert_eq!(m.tech().leakage_factor(), 0.5);
        assert_eq!(m.alpha(), EVAL_ALPHA);
        // Slice overrides collapse for non-gradual policies...
        let q = EvalPoint {
            slices: Some(8),
            ..p
        };
        assert_eq!(p.key(), q.key());
        // ...but not for GradualSleep.
        let g4 = EvalPoint {
            policy: PolicyKind::GradualSleep,
            ..p
        };
        let g8 = EvalPoint {
            policy: PolicyKind::GradualSleep,
            ..q
        };
        assert_ne!(g4.key(), g8.key());
        // Out-of-range knobs surface as model errors.
        assert!(EvalPoint { leak: 1.5, ..p }.model().is_err());
    }

    #[test]
    fn policy_energy_sums_over_fus() {
        let m = near_term_model();
        let sim = SimResult {
            cycles: 100,
            committed: 100,
            fu_idle: vec![
                IntervalSpectrum::from_lengths(&[10, 20]),
                IntervalSpectrum::from_lengths(&[70]),
            ],
            fu_active: vec![70, 30],
            ..SimResult::default()
        };
        let total = policy_energy_of(&m, PolicyForm::MaxSleep, &sim);
        assert_eq!(total.active_cycles, 100);
        assert_eq!(total.sleep_equiv, 100.0);
        assert_eq!(total.transitions_equiv, 3.0);
        assert!((total.total_cycles() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn cache_hits_and_dedups() {
        use crate::harness::Budget;
        let cache = PolicyCache::new();
        let s = Scenario::paper("mst", 2, 12, Budget::Custom(1_000));
        let m = near_term_model();
        let form = PolicyForm::MaxSleep;
        assert!(cache.get(&s, form, m.fingerprint()).is_none());
        let run = PolicyRun {
            active_cycles: 7,
            ..PolicyRun::default()
        };
        cache.insert(s.clone(), form, m.fingerprint(), run);
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.get(&s, form, m.fingerprint()).unwrap().active_cycles,
            7
        );
        // A different technology point is a different key.
        let other = EnergyModel::new(TechnologyParams::high_leakage(), EVAL_ALPHA).unwrap();
        assert!(cache.get(&s, form, other.fingerprint()).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert!(!cache.is_empty());
    }
}
