//! `repro serve` — a warm result daemon over the scenario engine.
//!
//! A hand-rolled, dependency-free HTTP/1.1 server (`std::net` only)
//! holding one [`Engine`] — and, through it, the four in-memory cache
//! layers and the optional persistent [`crate::store::ResultStore`] —
//! alive across requests, so repeated sweeps and experiment
//! regenerations cost a table render instead of a simulation.
//!
//! Endpoints (GET only):
//!
//! * `/health` — liveness probe, `ok` as `text/plain`;
//! * `/experiments` — the experiment registry as a JSON name array;
//! * `/experiment/<name>?format=json|csv` — one registry experiment's
//!   table;
//! * `/sweep?<axis>=<values>&format=json|csv` — an ad-hoc sweep; the
//!   query keys are the `repro sweep` axis flags minus the leading
//!   dashes (`bench=gzip,vpr&int-fus=1:4&l2=12,32&policy=maxsleep`),
//!   parsed by the same [`crate::cli`] grammar;
//! * `/explore?<axis>=<values>&format=json|csv` — a grid-batched
//!   design-space exploration (`repro explore` axis flags minus the
//!   dashes, e.g. `bench=gzip&leak=0:1:0.02&transition=0.01`); the
//!   body is the optima, frontier, and crossover tables concatenated
//!   in the CLI's emission order.
//!
//! Responses are the *exact* [`crate::result::ResultTable::to_json`] /
//! [`to_csv`](crate::result::ResultTable::to_csv) bytes the CLI
//! prints with `--format json|csv` — the determinism contract extends
//! over the wire, and CI diffs a served sweep against the CLI output
//! byte for byte. Request logs go to stderr; the server never touches
//! stdout.

use crate::cli;
use crate::experiment::{self, sweep_table, Context};
use crate::explore::{explore, ExploreSpec};
use crate::harness::Budget;
use crate::scenario::{Engine, SweepSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One HTTP response: status line suffix, content type, body.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type,
            body: body.into(),
        }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: format!("{message}\n").into_bytes(),
        }
    }
}

/// A bound, not-yet-serving daemon: [`Server::bind`] reserves the
/// address (port 0 picks a free one, for tests), then [`Server::run`]
/// blocks in the accept loop or [`Server::spawn`] serves from a
/// background thread.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    budget: Budget,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 for an ephemeral
    /// port), serving tables from `engine` at `budget`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the address if the bind fails.
    pub fn bind(addr: &str, engine: Arc<Engine>, budget: Budget) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
        Ok(Server {
            listener,
            engine,
            budget,
        })
    }

    /// The bound socket address (resolves port 0 to the actual port).
    ///
    /// # Panics
    ///
    /// Panics if the just-bound listener cannot report its address —
    /// an OS-level invariant violation, not a recoverable state.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has an address")
    }

    /// Serves until `stop` is set (checked per accepted connection —
    /// [`ServerHandle::stop`] wakes the loop with a dummy connection).
    /// One thread per connection; the engine is shared, so concurrent
    /// requests cooperate through its caches like engine workers do.
    fn serve(self, stop: &AtomicBool) {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let engine = Arc::clone(&self.engine);
                    let budget = self.budget;
                    std::thread::spawn(move || handle_connection(stream, &engine, budget));
                }
                Err(e) => eprintln!("[serve] accept error: {e}"),
            }
        }
    }

    /// Blocks the calling thread in the accept loop forever (the
    /// `repro serve` foreground mode).
    pub fn run(self) {
        let never = AtomicBool::new(false);
        self.serve(&never);
    }

    /// Serves from a background thread, returning a handle that stops
    /// and joins it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || self.serve(&flag));
        ServerHandle {
            addr,
            stop,
            join: Some(join),
        }
    }
}

/// A running background server (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. In-flight
    /// request threads finish on their own.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Reads one request off `stream`, routes it, and writes the response.
/// All errors degrade to HTTP error responses or a dropped connection;
/// nothing here can take the accept loop down.
fn handle_connection(stream: TcpStream, engine: &Engine, budget: Budget) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "?".to_string(), |a| a.to_string());
    // Request timing is log-only telemetry on stderr; no result ever
    // depends on it (serve.rs is wallclock-scope-exempt for exactly
    // this line of business — see fuleak-lint's rules).
    let started = std::time::Instant::now();
    let mut reader = BufReader::new(&stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers; GET requests carry no body.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return,
    };
    let response = if method != "GET" {
        Response::error(405, "Method Not Allowed", "only GET is supported")
    } else {
        route(&target, engine, budget)
    };
    let mut out = Vec::with_capacity(response.body.len() + 128);
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.reason,
        response.content_type,
        response.body.len()
    );
    out.extend_from_slice(&response.body);
    let ok = (&stream).write_all(&out).is_ok() && (&stream).flush().is_ok();
    eprintln!(
        "[serve] {peer} {method} {target} -> {}{} ({} bytes, {:.1} ms)",
        response.status,
        if ok { "" } else { " (client gone)" },
        response.body.len(),
        1e3 * started.elapsed().as_secs_f64()
    );
}

/// Routes one request target to a response.
fn route(target: &str, engine: &Engine, budget: Budget) -> Response {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/health" => Response::ok("text/plain; charset=utf-8", "ok\n"),
        "/experiments" => {
            let names: Vec<String> = experiment::all_names()
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect();
            Response::ok("application/json", format!("[{}]\n", names.join(", ")))
        }
        "/sweep" => match sweep_response(query, engine, budget) {
            Ok(r) => r,
            Err(e) => Response::error(400, "Bad Request", &e),
        },
        "/explore" => match explore_response(query, engine, budget) {
            Ok(r) => r,
            Err(e) => Response::error(400, "Bad Request", &e),
        },
        _ => match path.strip_prefix("/experiment/") {
            Some(name) => match experiment_response(name, query, engine, budget) {
                Ok(r) => r,
                Err(e) => e,
            },
            None => Response::error(404, "Not Found", &format!("no route for `{path}`")),
        },
    }
}

/// The served table format — JSON unless `format=csv`.
enum WireFormat {
    Json,
    Csv,
}

impl WireFormat {
    fn content_type(&self) -> &'static str {
        match self {
            WireFormat::Json => "application/json",
            WireFormat::Csv => "text/csv; charset=utf-8",
        }
    }
}

/// Splits a query string into decoded `(key, value)` pairs, pulling
/// out the `format` selector.
fn parse_query(query: &str) -> Result<(Vec<(String, String)>, WireFormat), String> {
    let mut params = Vec::new();
    let mut format = WireFormat::Json;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("query parameter `{pair}` needs a value"))?;
        let key = percent_decode(key)?;
        let value = percent_decode(value)?;
        if key == "format" {
            format = match value.as_str() {
                "json" => WireFormat::Json,
                "csv" => WireFormat::Csv,
                other => return Err(format!("invalid format value `{other}` (json or csv)")),
            };
        } else {
            params.push((key, value));
        }
    }
    Ok((params, format))
}

/// Runs one registry experiment and serves its table.
fn experiment_response(
    name: &str,
    query: &str,
    engine: &Engine,
    budget: Budget,
) -> Result<Response, Response> {
    let (params, format) =
        parse_query(query).map_err(|e| Response::error(400, "Bad Request", &e))?;
    if let Some((key, _)) = params.first() {
        return Err(Response::error(
            400,
            "Bad Request",
            &format!("unknown experiment parameter `{key}` (only format=)"),
        ));
    }
    let exp = experiment::by_name(name).ok_or_else(|| {
        Response::error(
            404,
            "Not Found",
            &format!(
                "unknown experiment `{name}`; known: {}",
                experiment::all_names().join(" ")
            ),
        )
    })?;
    let mut ctx = Context::new(engine, budget);
    let table = exp.run(&mut ctx);
    let body = match format {
        WireFormat::Json => table.to_json(),
        WireFormat::Csv => table.to_csv(),
    };
    Ok(Response::ok(format.content_type(), body))
}

/// Builds a sweep from the query's axis parameters and serves its
/// table — the same spec the CLI would build from the equivalent
/// `repro sweep` flags, over the same shared engine.
fn sweep_response(query: &str, engine: &Engine, budget: Budget) -> Result<Response, String> {
    let (params, format) = parse_query(query)?;
    let mut spec = SweepSpec::new(budget);
    for (key, value) in &params {
        spec = cli::apply_sweep_flag(spec, &format!("--{key}"), value)?;
    }
    let table = sweep_table(engine, &spec).map_err(|e| format!("invalid sweep: {e}"))?;
    let body = match format {
        WireFormat::Json => table.to_json(),
        WireFormat::Csv => table.to_csv(),
    };
    Ok(Response::ok(format.content_type(), body))
}

/// Builds an exploration from the query's axis parameters and serves
/// its three digests concatenated — byte-identical to the
/// `repro explore --format json|csv` stdout for the equivalent flags
/// (CI diffs the two).
fn explore_response(query: &str, engine: &Engine, budget: Budget) -> Result<Response, String> {
    let (params, format) = parse_query(query)?;
    let mut spec = ExploreSpec::new(budget);
    for (key, value) in &params {
        spec = cli::apply_explore_flag(spec, &format!("--{key}"), value)?;
    }
    let started = std::time::Instant::now();
    let result = explore(engine, &spec);
    engine.note_grid_nanos(started.elapsed().as_nanos() as u64);
    let mut body = String::new();
    for table in [&result.optima, &result.frontier, &result.crossover] {
        body.push_str(&match format {
            WireFormat::Json => table.to_json(),
            WireFormat::Csv => table.to_csv(),
        });
    }
    Ok(Response::ok(format.content_type(), body))
}

/// Decodes `%XX` escapes and `+` spaces in a query component.
fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("truncated %-escape in `{s}`"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("query component `{s}` is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("1%3A4").unwrap(), "1:4");
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%4").is_err());
    }

    #[test]
    fn query_parsing_extracts_format() {
        let (params, format) = parse_query("bench=gzip&int-fus=1%3A2&format=csv").unwrap();
        assert_eq!(
            params,
            vec![
                ("bench".to_string(), "gzip".to_string()),
                ("int-fus".to_string(), "1:2".to_string())
            ]
        );
        assert!(matches!(format, WireFormat::Csv));
        assert!(parse_query("format=xml").is_err());
        assert!(parse_query("novalue").is_err());
    }

    #[test]
    fn routes_reject_unknowns_without_simulation() {
        let engine = Engine::sequential();
        let r = route("/nope", &engine, Budget::Quick);
        assert_eq!(r.status, 404);
        let r = route("/experiment/not-a-table", &engine, Budget::Quick);
        assert_eq!(r.status, 404);
        let r = route("/sweep?bogus=1", &engine, Budget::Quick);
        assert_eq!(r.status, 400);
        assert!(String::from_utf8(r.body).unwrap().contains("--bogus"));
        let r = route("/explore?bogus=1", &engine, Budget::Quick);
        assert_eq!(r.status, 400);
        assert!(String::from_utf8(r.body)
            .unwrap()
            .contains("unknown explore flag `--bogus`"));
        let r = route("/health", &engine, Budget::Quick);
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"ok\n");
    }

    #[test]
    fn experiments_listing_is_json() {
        let engine = Engine::sequential();
        let r = route("/experiments", &engine, Budget::Quick);
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.starts_with('['));
        assert!(body.contains("\"table1\""));
    }
}
