//! `repro serve` — a warm result daemon over the scenario engine.
//!
//! A hand-rolled, dependency-free HTTP/1.1 server (`std::net` only)
//! holding one [`Engine`] — and, through it, the four in-memory cache
//! layers and the optional persistent [`crate::store::ResultStore`] —
//! alive across requests, so repeated sweeps and experiment
//! regenerations cost a table render instead of a simulation, and a
//! repeated *request* costs a cache lookup instead of a render (the
//! [`crate::respcache::ResponseCache`] holds canonical rendered
//! bodies).
//!
//! The connection layer is a production-shaped pool rather than
//! thread-per-connection:
//!
//! * a fixed worker pool ([`ServeConfig::workers`]) drains a bounded
//!   accept queue ([`ServeConfig::queue_depth`]); when the queue is
//!   full the accept thread answers `503` with `Retry-After: 1`
//!   inline and drops the connection — bounded memory under overload;
//! * connections are HTTP/1.1 keep-alive by default: a worker serves
//!   up to [`ServeConfig::max_requests_per_conn`] requests per
//!   connection, honouring `Connection: close` and always sending
//!   explicit `Content-Length` and `Connection` headers;
//! * [`ServerHandle::stop`] is graceful: the accept loop exits, the
//!   queue closes, and every worker finishes its in-flight request
//!   (and any already-accepted queued connections) before the join
//!   returns — no response is ever truncated by shutdown.
//!
//! Endpoints (GET only):
//!
//! * `/health` — liveness probe, `ok` as `text/plain`;
//! * `/stats` — engine, response-cache, and server counters as JSON
//!   with deterministic key order (telemetry; never cached);
//! * `/experiments` — the experiment registry as a JSON name array;
//! * `/experiment/<name>?format=json|csv` — one registry experiment's
//!   table;
//! * `/sweep?<axis>=<values>&format=json|csv` — an ad-hoc sweep; the
//!   query keys are the `repro sweep` axis flags minus the leading
//!   dashes (`bench=gzip,vpr&int-fus=1:4&l2=12,32&policy=maxsleep`),
//!   parsed by the same [`crate::cli`] grammar;
//! * `/explore?<axis>=<values>&format=json|csv` — a grid-batched
//!   design-space exploration (`repro explore` axis flags minus the
//!   dashes, e.g. `bench=gzip&leak=0:1:0.02&transition=0.01`); the
//!   body is the optima, frontier, and crossover tables concatenated
//!   in the CLI's emission order.
//!
//! Responses are the *exact* [`crate::result::ResultTable::to_json`] /
//! [`to_csv`](crate::result::ResultTable::to_csv) bytes the CLI
//! prints with `--format json|csv` — the determinism contract extends
//! over the wire, and CI diffs a served sweep against the CLI output
//! byte for byte, with and without the response cache. Request logs
//! go to stderr; the server never touches stdout.

use crate::cli;
use crate::experiment::{self, sweep_table, Context};
use crate::explore::{explore, ExploreSpec};
use crate::harness::Budget;
use crate::respcache::{self, BodyFormat, ResponseCache};
use crate::scenario::{lock_unpoisoned, Engine, SweepSpec};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll granularity for keep-alive idle waits: how often a parked
/// worker re-checks the shutdown flag while waiting for the next
/// request on a connection.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// How long a keep-alive connection may sit idle (no request bytes)
/// before the worker closes it.
const IDLE_LIMIT: Duration = Duration::from_secs(10);

/// Connection-layer tuning for [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the accept queue.
    pub workers: usize,
    /// Accepted connections that may wait for a worker; beyond this
    /// the accept thread answers `503` inline.
    pub queue_depth: usize,
    /// Requests served per connection before the server closes it
    /// (`Connection: close` on the last response).
    pub max_requests_per_conn: usize,
    /// Response-cache capacity in body bytes; `0` disables the cache.
    pub respcache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            max_requests_per_conn: 256,
            respcache_bytes: 8 << 20,
        }
    }
}

/// Monotonic serving-layer counters, all updated with relaxed atomics
/// and exposed through `/stats` and [`ServerHandle::counters`].
#[derive(Debug, Default)]
pub struct ServerCounters {
    connections: AtomicUsize,
    requests: AtomicUsize,
    rejected_503: AtomicUsize,
    queue_depth: AtomicUsize,
    queue_highwater: AtomicUsize,
}

impl ServerCounters {
    /// Connections accepted (including ones later rejected with 503).
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::Relaxed)
    }

    /// Requests answered with a routed response.
    pub fn requests(&self) -> usize {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections refused with `503` because the queue was full.
    pub fn rejected_503(&self) -> usize {
        self.rejected_503.load(Ordering::Relaxed)
    }

    /// Connections currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Deepest the wait queue has ever been.
    pub fn queue_highwater(&self) -> usize {
        self.queue_highwater.load(Ordering::Relaxed)
    }
}

/// The bounded hand-off between the accept thread and the workers.
struct ConnQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    depth: usize,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(depth: usize) -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues an accepted connection, or hands it back when the
    /// queue is full (the caller answers 503). The depth gauge and
    /// high-water mark update under the queue lock, so `/stats` never
    /// reads a stale depth.
    fn push(&self, stream: TcpStream, counters: &ServerCounters) -> Result<(), TcpStream> {
        let mut state = lock_unpoisoned(&self.state);
        if state.closed || state.conns.len() >= self.depth {
            return Err(stream);
        }
        state.conns.push_back(stream);
        let depth = state.conns.len();
        counters.queue_depth.store(depth, Ordering::Relaxed);
        counters.queue_highwater.fetch_max(depth, Ordering::Relaxed);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available; `None` once the queue
    /// is closed *and* drained (workers finish queued work first).
    fn pop(&self, counters: &ServerCounters) -> Option<TcpStream> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(conn) = state.conns.pop_front() {
                counters
                    .queue_depth
                    .store(state.conns.len(), Ordering::Relaxed);
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting pushes and wakes every parked worker.
    fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.cv.notify_all();
    }
}

/// One HTTP response: status line suffix, content type, body.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type,
            body: body.into(),
        }
    }

    fn ok_shared(content_type: &'static str, body: &Arc<Vec<u8>>) -> Response {
        Response::ok(content_type, body.as_ref().clone())
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: format!("{message}\n").into_bytes(),
        }
    }
}

/// Everything a request needs to be routed: the shared engine, the
/// serving budget, the optional response cache, and the server
/// counters (for `/stats`).
struct RouteCtx<'a> {
    engine: &'a Engine,
    budget: Budget,
    respcache: Option<&'a ResponseCache>,
    counters: &'a ServerCounters,
}

/// A bound, not-yet-serving daemon: [`Server::bind`] reserves the
/// address (port 0 picks a free one, for tests), then [`Server::run`]
/// blocks in the accept loop or [`Server::spawn`] serves from a
/// background thread.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    budget: Budget,
    config: ServeConfig,
    counters: Arc<ServerCounters>,
    respcache: Option<Arc<ResponseCache>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 for an ephemeral
    /// port), serving tables from `engine` at `budget` with the
    /// default [`ServeConfig`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the address if the bind fails.
    pub fn bind(addr: &str, engine: Arc<Engine>, budget: Budget) -> Result<Server, String> {
        Server::bind_with(addr, engine, budget, ServeConfig::default())
    }

    /// [`Server::bind`] with explicit connection-layer tuning.
    ///
    /// # Errors
    ///
    /// Returns a message naming the address if the bind fails.
    pub fn bind_with(
        addr: &str,
        engine: Arc<Engine>,
        budget: Budget,
        config: ServeConfig,
    ) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
        let respcache = (config.respcache_bytes > 0).then(|| {
            let cache = ResponseCache::new(config.respcache_bytes);
            cache.set_store(engine.store());
            Arc::new(cache)
        });
        Ok(Server {
            listener,
            engine,
            budget,
            config,
            counters: Arc::new(ServerCounters::default()),
            respcache,
        })
    }

    /// The bound socket address (resolves port 0 to the actual port).
    ///
    /// # Panics
    ///
    /// Panics if the just-bound listener cannot report its address —
    /// an OS-level invariant violation, not a recoverable state.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has an address")
    }

    /// The serving-layer counters (shared with a spawned handle).
    pub fn counters(&self) -> Arc<ServerCounters> {
        Arc::clone(&self.counters)
    }

    /// Runs the accept loop until `stop` is set, then closes the
    /// queue and joins the workers — every accepted connection is
    /// either served or refused with 503, never silently dropped
    /// mid-response.
    fn serve(self, stop: &Arc<AtomicBool>) {
        let queue = Arc::new(ConnQueue::new(self.config.queue_depth));
        let workers: Vec<JoinHandle<()>> = (0..self.config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let engine = Arc::clone(&self.engine);
                let counters = Arc::clone(&self.counters);
                let respcache = self.respcache.clone();
                let drain = Arc::clone(stop);
                let budget = self.budget;
                let max_requests = self.config.max_requests_per_conn.max(1);
                std::thread::spawn(move || {
                    while let Some(stream) = queue.pop(&counters) {
                        let ctx = RouteCtx {
                            engine: &engine,
                            budget,
                            respcache: respcache.as_deref(),
                            counters: &counters,
                        };
                        handle_connection(stream, &ctx, max_requests, &drain);
                    }
                })
            })
            .collect();
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    self.counters.connections.fetch_add(1, Ordering::Relaxed);
                    if let Err(stream) = queue.push(stream, &self.counters) {
                        self.counters.rejected_503.fetch_add(1, Ordering::Relaxed);
                        write_busy(stream);
                    }
                }
                Err(e) => eprintln!("[serve] accept error: {e}"),
            }
        }
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// Blocks the calling thread in the accept loop forever (the
    /// `repro serve` foreground mode).
    pub fn run(self) {
        let never = Arc::new(AtomicBool::new(false));
        self.serve(&never);
    }

    /// Serves from a background thread, returning a handle that stops
    /// and joins it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let counters = Arc::clone(&self.counters);
        let engine = Arc::clone(&self.engine);
        let respcache = self.respcache.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || self.serve(&flag));
        ServerHandle {
            addr,
            stop,
            join: Some(join),
            counters,
            engine,
            respcache,
        }
    }
}

/// A running background server (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    counters: Arc<ServerCounters>,
    engine: Arc<Engine>,
    respcache: Option<Arc<ResponseCache>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving-layer counters, for in-process assertions.
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// The shared engine, for in-process stats assertions.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The response cache, when enabled.
    pub fn respcache(&self) -> Option<&ResponseCache> {
        self.respcache.as_deref()
    }

    /// Stops the accept loop and joins the server gracefully: the
    /// queue closes, workers finish their in-flight requests (and any
    /// queued connections), and only then does this return. No
    /// response is truncated by shutdown.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Answers an over-capacity connection inline from the accept thread:
/// `503` with `Retry-After`, then close. Never blocks on a worker.
fn write_busy(mut stream: TcpStream) {
    let body = b"server busy, retry shortly\n";
    let head = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// Reads a CRLF line through `reader`, tolerating read-timeout ticks:
/// partial bytes accumulate in `line` across ticks (BufRead keeps
/// them), and each tick re-checks the shutdown flag and the idle
/// budget. Returns `false` when the connection should close (EOF,
/// hard error, idle timeout, or shutdown before any bytes arrived).
fn read_line_ticking(
    reader: &mut BufReader<&TcpStream>,
    line: &mut String,
    stop: &AtomicBool,
) -> bool {
    let mut waited = Duration::ZERO;
    loop {
        match reader.read_line(line) {
            Ok(0) => return false,
            Ok(_) => return true,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Shutdown closes idle connections immediately, but a
                // request that has started arriving is drained.
                if line.is_empty() && stop.load(Ordering::SeqCst) {
                    return false;
                }
                waited += IDLE_TICK;
                if waited >= IDLE_LIMIT {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
}

/// Serves up to `max_requests` keep-alive requests off one
/// connection. All errors degrade to HTTP error responses or a closed
/// connection; nothing here can take a worker down. On shutdown
/// (`stop` set), an in-flight request is drained and answered with
/// `Connection: close`; an idle connection closes at the next tick.
fn handle_connection(
    stream: TcpStream,
    ctx: &RouteCtx<'_>,
    max_requests: usize,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(IDLE_TICK));
    let _ = stream.set_nodelay(true);
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "?".to_string(), |a| a.to_string());
    let mut reader = BufReader::new(&stream);
    for served in 1..=max_requests {
        let mut request_line = String::new();
        if !read_line_ticking(&mut reader, &mut request_line, stop) {
            return;
        }
        // Drain the headers (GET requests carry no body), honouring
        // an explicit `Connection: close`.
        let mut client_close = false;
        loop {
            let mut line = String::new();
            if !read_line_ticking(&mut reader, &mut line, stop) {
                return;
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("connection")
                    && value.trim().eq_ignore_ascii_case("close")
                {
                    client_close = true;
                }
            }
        }
        let mut parts = request_line.split_whitespace();
        let (method, target) = match (parts.next(), parts.next()) {
            (Some(m), Some(t)) => (m.to_string(), t.to_string()),
            _ => return,
        };
        // Request timing is log-only telemetry on stderr; no result
        // ever depends on it (serve.rs is wallclock-scope-exempt for
        // exactly this line of business — see fuleak-lint's rules).
        let started = std::time::Instant::now();
        let response = if method != "GET" {
            Response::error(405, "Method Not Allowed", "only GET is supported")
        } else {
            route(&target, ctx)
        };
        ctx.counters.requests.fetch_add(1, Ordering::Relaxed);
        let close = client_close || served == max_requests || stop.load(Ordering::SeqCst);
        let mut out = Vec::with_capacity(response.body.len() + 160);
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            response.status,
            response.reason,
            response.content_type,
            response.body.len(),
            if close { "close" } else { "keep-alive" }
        );
        out.extend_from_slice(&response.body);
        let ok = (&stream).write_all(&out).is_ok() && (&stream).flush().is_ok();
        eprintln!(
            "[serve] {peer} {method} {target} -> {}{} ({} bytes, {:.1} ms, conn req {served})",
            response.status,
            if ok { "" } else { " (client gone)" },
            response.body.len(),
            1e3 * started.elapsed().as_secs_f64()
        );
        if close || !ok {
            return;
        }
    }
}

/// Routes one request target to a response, consulting the response
/// cache for the cacheable table routes.
fn route(target: &str, ctx: &RouteCtx<'_>) -> Response {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/health" => Response::ok("text/plain; charset=utf-8", "ok\n"),
        "/stats" => Response::ok("application/json", stats_json(ctx)),
        "/experiments" => {
            let names: Vec<String> = experiment::all_names()
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect();
            Response::ok("application/json", format!("[{}]\n", names.join(", ")))
        }
        "/sweep" => match sweep_response(query, ctx) {
            Ok(r) => r,
            Err(e) => Response::error(400, "Bad Request", &e),
        },
        "/explore" => match explore_response(query, ctx) {
            Ok(r) => r,
            Err(e) => Response::error(400, "Bad Request", &e),
        },
        _ => match path.strip_prefix("/experiment/") {
            Some(name) => match experiment_response(name, query, ctx) {
                Ok(r) => r,
                Err(e) => e,
            },
            None => Response::error(404, "Not Found", &format!("no route for `{path}`")),
        },
    }
}

/// Renders `/stats`: engine, response-cache, and server counters as
/// one JSON object with deterministic key order. Telemetry only —
/// values vary run to run, so this route is never cached and never
/// printed to stdout.
fn stats_json(ctx: &RouteCtx<'_>) -> String {
    let e = ctx.engine.stats();
    let engine = format!(
        concat!(
            "{{\"points\": {}, \"simulated\": {}, \"sim_hits\": {}, \"sim_misses\": {}, ",
            "\"trace_hits\": {}, \"captures\": {}, \"annotation_hits\": {}, ",
            "\"annotations_built\": {}, \"policy_hits\": {}, \"policy_misses\": {}, ",
            "\"flight_waits\": {}, \"disk_hits\": {}, \"disk_writes\": {}}}"
        ),
        e.points,
        e.simulated(),
        e.hits,
        e.misses,
        e.trace_hits,
        e.captures,
        e.annotation_hits,
        e.annotations_built,
        e.policy_hits,
        e.policy_misses,
        e.flight_waits,
        e.disk_hits,
        e.disk_writes,
    );
    let respcache = match ctx.respcache {
        Some(c) => format!(
            "{{\"enabled\": true, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"entries\": {}, \"bytes\": {}}}",
            c.hits(),
            c.misses(),
            c.evictions(),
            c.len(),
            c.bytes()
        ),
        None => "{\"enabled\": false, \"hits\": 0, \"misses\": 0, \"evictions\": 0, \
                 \"entries\": 0, \"bytes\": 0}"
            .to_string(),
    };
    let s = ctx.counters;
    let server = format!(
        "{{\"connections\": {}, \"requests\": {}, \"queue_depth\": {}, \
         \"queue_highwater\": {}, \"rejected_503\": {}}}",
        s.connections(),
        s.requests(),
        s.queue_depth(),
        s.queue_highwater(),
        s.rejected_503()
    );
    format!("{{\"engine\": {engine}, \"respcache\": {respcache}, \"server\": {server}}}\n")
}

/// The served table format — JSON unless `format=csv`.
enum WireFormat {
    Json,
    Csv,
}

impl WireFormat {
    fn content_type(&self) -> &'static str {
        match self {
            WireFormat::Json => "application/json",
            WireFormat::Csv => "text/csv; charset=utf-8",
        }
    }

    fn body(&self) -> BodyFormat {
        match self {
            WireFormat::Json => BodyFormat::Json,
            WireFormat::Csv => BodyFormat::Csv,
        }
    }
}

/// Splits a query string into decoded `(key, value)` pairs, pulling
/// out the `format` selector.
fn parse_query(query: &str) -> Result<(Vec<(String, String)>, WireFormat), String> {
    let mut params = Vec::new();
    let mut format = WireFormat::Json;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("query parameter `{pair}` needs a value"))?;
        let key = percent_decode(key)?;
        let value = percent_decode(value)?;
        if key == "format" {
            format = match value.as_str() {
                "json" => WireFormat::Json,
                "csv" => WireFormat::Csv,
                other => return Err(format!("invalid format value `{other}` (json or csv)")),
            };
        } else {
            params.push((key, value));
        }
    }
    Ok((params, format))
}

/// Runs one registry experiment and serves its table, consulting the
/// response cache first (keyed on name, budget, and format).
fn experiment_response(name: &str, query: &str, ctx: &RouteCtx<'_>) -> Result<Response, Response> {
    let (params, format) =
        parse_query(query).map_err(|e| Response::error(400, "Bad Request", &e))?;
    if let Some((key, _)) = params.first() {
        return Err(Response::error(
            400,
            "Bad Request",
            &format!("unknown experiment parameter `{key}` (only format=)"),
        ));
    }
    let exp = experiment::by_name(name).ok_or_else(|| {
        Response::error(
            404,
            "Not Found",
            &format!(
                "unknown experiment `{name}`; known: {}",
                experiment::all_names().join(" ")
            ),
        )
    })?;
    let key = respcache::experiment_key(name, ctx.budget, format.body());
    if let Some(body) = ctx.respcache.and_then(|c| c.get(&key)) {
        return Ok(Response::ok_shared(format.content_type(), &body));
    }
    let mut run_ctx = Context::new(ctx.engine, ctx.budget);
    let table = exp.run(&mut run_ctx);
    let body = match format {
        WireFormat::Json => table.to_json(),
        WireFormat::Csv => table.to_csv(),
    };
    if let Some(cache) = ctx.respcache {
        let shared = cache.put(&key, body.into_bytes());
        return Ok(Response::ok_shared(format.content_type(), &shared));
    }
    Ok(Response::ok(format.content_type(), body))
}

/// Builds a sweep from the query's axis parameters and serves its
/// table — the same spec the CLI would build from the equivalent
/// `repro sweep` flags, over the same shared engine. The canonical
/// parsed spec keys the response cache, so `int-fus=1:2` and
/// `int-fus=1,2` share one cached body.
fn sweep_response(query: &str, ctx: &RouteCtx<'_>) -> Result<Response, String> {
    let (params, format) = parse_query(query)?;
    let mut spec = SweepSpec::new(ctx.budget);
    for (key, value) in &params {
        spec = cli::apply_sweep_flag(spec, &format!("--{key}"), value)?;
    }
    let key = respcache::sweep_key(&spec, format.body());
    if let Some(body) = ctx.respcache.and_then(|c| c.get(&key)) {
        return Ok(Response::ok_shared(format.content_type(), &body));
    }
    let table = sweep_table(ctx.engine, &spec).map_err(|e| format!("invalid sweep: {e}"))?;
    let body = match format {
        WireFormat::Json => table.to_json(),
        WireFormat::Csv => table.to_csv(),
    };
    if let Some(cache) = ctx.respcache {
        let shared = cache.put(&key, body.into_bytes());
        return Ok(Response::ok_shared(format.content_type(), &shared));
    }
    Ok(Response::ok(format.content_type(), body))
}

/// Builds an exploration from the query's axis parameters and serves
/// its three digests concatenated — byte-identical to the
/// `repro explore --format json|csv` stdout for the equivalent flags
/// (CI diffs the two).
fn explore_response(query: &str, ctx: &RouteCtx<'_>) -> Result<Response, String> {
    let (params, format) = parse_query(query)?;
    let mut spec = ExploreSpec::new(ctx.budget);
    for (key, value) in &params {
        spec = cli::apply_explore_flag(spec, &format!("--{key}"), value)?;
    }
    let key = respcache::explore_key(&spec, format.body());
    if let Some(body) = ctx.respcache.and_then(|c| c.get(&key)) {
        return Ok(Response::ok_shared(format.content_type(), &body));
    }
    let started = std::time::Instant::now();
    let result = explore(ctx.engine, &spec);
    ctx.engine
        .note_grid_nanos(started.elapsed().as_nanos() as u64);
    let mut body = String::new();
    for table in [&result.optima, &result.frontier, &result.crossover] {
        body.push_str(&match format {
            WireFormat::Json => table.to_json(),
            WireFormat::Csv => table.to_csv(),
        });
    }
    if let Some(cache) = ctx.respcache {
        let shared = cache.put(&key, body.into_bytes());
        return Ok(Response::ok_shared(format.content_type(), &shared));
    }
    Ok(Response::ok(format.content_type(), body))
}

/// Decodes `%XX` escapes and `+` spaces in a query component.
fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("truncated %-escape in `{s}`"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("query component `{s}` is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctx<'a>(
        engine: &'a Engine,
        counters: &'a ServerCounters,
        respcache: Option<&'a ResponseCache>,
    ) -> RouteCtx<'a> {
        RouteCtx {
            engine,
            budget: Budget::Quick,
            respcache,
            counters,
        }
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("1%3A4").unwrap(), "1:4");
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%4").is_err());
    }

    #[test]
    fn query_parsing_extracts_format() {
        let (params, format) = parse_query("bench=gzip&int-fus=1%3A2&format=csv").unwrap();
        assert_eq!(
            params,
            vec![
                ("bench".to_string(), "gzip".to_string()),
                ("int-fus".to_string(), "1:2".to_string())
            ]
        );
        assert!(matches!(format, WireFormat::Csv));
        assert!(parse_query("format=xml").is_err());
        assert!(parse_query("novalue").is_err());
    }

    #[test]
    fn routes_reject_unknowns_without_simulation() {
        let engine = Engine::sequential();
        let counters = ServerCounters::default();
        let ctx = test_ctx(&engine, &counters, None);
        let r = route("/nope", &ctx);
        assert_eq!(r.status, 404);
        let r = route("/experiment/not-a-table", &ctx);
        assert_eq!(r.status, 404);
        let r = route("/sweep?bogus=1", &ctx);
        assert_eq!(r.status, 400);
        assert!(String::from_utf8(r.body).unwrap().contains("--bogus"));
        let r = route("/explore?bogus=1", &ctx);
        assert_eq!(r.status, 400);
        assert!(String::from_utf8(r.body)
            .unwrap()
            .contains("unknown explore flag `--bogus`"));
        let r = route("/health", &ctx);
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"ok\n");
    }

    #[test]
    fn experiments_listing_is_json() {
        let engine = Engine::sequential();
        let counters = ServerCounters::default();
        let ctx = test_ctx(&engine, &counters, None);
        let r = route("/experiments", &ctx);
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.starts_with('['));
        assert!(body.contains("\"table1\""));
    }

    #[test]
    fn stats_route_is_deterministic_json_with_flight_waits() {
        let engine = Engine::sequential();
        let counters = ServerCounters::default();
        let ctx = test_ctx(&engine, &counters, None);
        let r = route("/stats", &ctx);
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        for key in [
            "\"engine\"",
            "\"flight_waits\"",
            "\"respcache\"",
            "\"server\"",
            "\"queue_highwater\"",
            "\"rejected_503\"",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        assert!(
            body.find("\"engine\"").unwrap() < body.find("\"respcache\"").unwrap()
                && body.find("\"respcache\"").unwrap() < body.find("\"server\"").unwrap(),
            "stats keys must render in deterministic order"
        );
    }

    #[test]
    fn cached_sweep_responses_are_byte_identical_to_fresh_renders() {
        let engine = Engine::sequential();
        let counters = ServerCounters::default();
        let cache = ResponseCache::new(1 << 20);
        let target = "/sweep?bench=gzip&int-fus=1%3A2&format=json";
        let fresh = {
            let ctx = test_ctx(&engine, &counters, None);
            route(target, &ctx)
        };
        assert_eq!(fresh.status, 200);
        let ctx = test_ctx(&engine, &counters, Some(&cache));
        let miss = route(target, &ctx);
        assert_eq!(cache.misses(), 1);
        // Equivalent spelling of the same sweep hits the same entry.
        let hit = route("/sweep?bench=gzip&int-fus=1%2C2&format=json", &ctx);
        assert_eq!(cache.hits(), 1);
        assert_eq!(fresh.body, miss.body);
        assert_eq!(fresh.body, hit.body, "cached bytes must equal fresh render");
    }

    #[test]
    fn queue_hands_back_overflow_and_drains_on_close() {
        let queue = ConnQueue::new(1);
        let counters = ServerCounters::default();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        assert!(queue.push(a, &counters).is_ok());
        assert_eq!(counters.queue_depth(), 1);
        assert_eq!(counters.queue_highwater(), 1);
        assert!(
            queue.push(b, &counters).is_err(),
            "depth-1 queue must hand back #2"
        );
        assert!(queue.pop(&counters).is_some());
        assert_eq!(counters.queue_depth(), 0);
        queue.close();
        let c = TcpStream::connect(addr).unwrap();
        assert!(
            queue.push(c, &counters).is_err(),
            "closed queue accepts nothing"
        );
        assert!(queue.pop(&counters).is_none(), "closed and drained");
    }
}
