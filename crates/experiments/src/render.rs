//! Minimal fixed-width table rendering shared by all experiments.

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a scenario-engine cache snapshot as one progress line, e.g.
/// `36 points cached (36 simulated, 34 cache hits) on 4 workers`.
pub fn engine_line(stats: &crate::scenario::EngineStats) -> String {
    format!(
        "{} points cached ({} simulated, {} cache hit{}) on {} worker{}",
        stats.points,
        stats.misses,
        stats.hits,
        if stats.hits == 1 { "" } else { "s" },
        stats.jobs,
        if stats.jobs == 1 { "" } else { "s" }
    )
}

/// Formats the engine's cumulative totals as one summary line, e.g.
/// `engine total: 72 points simulated, sim cache 101/173 hits (58.4%),
/// annotation cache 63/72 hits (87.5%, 9 built), trace cache 9/18
/// hits (50.0%), 9 traces, policy cache 720/1440 hits (50.0%, 720
/// runs), disk store 36/72 hits (50.0%, 36 written, 0 evicted), lane
/// batching 64 points in 4 batches (16.0 lanes/batch, 8 scalar), grid
/// eval 96 points in 12 traversals (1.59e6 points/s), 4 workers` —
/// what `repro all` prints last so cross-experiment
/// sharing of all four in-memory cache layers, the persistent disk
/// tier behind them, and the batching effectiveness of the replay
/// phase are visible. Stderr-only: the golden stdout transcript never
/// sees it.
pub fn engine_summary_line(stats: &crate::scenario::EngineStats) -> String {
    let pct = |rate: Option<f64>| rate.map_or("n/a".to_string(), |r| format!("{:.1}%", 100.0 * r));
    let batching = match stats.mean_lanes_per_batch() {
        Some(mean) => format!(
            "lane batching {} points in {} batch{} ({:.1} lanes/batch, {} scalar)",
            stats.batched_lanes,
            stats.batches,
            if stats.batches == 1 { "" } else { "es" },
            mean,
            stats.scalar_fallbacks,
        ),
        None => format!("lane batching off ({} scalar)", stats.scalar_fallbacks),
    };
    let grid = if stats.grid_points > 0 {
        let rate = stats
            .grid_points_per_sec()
            .map_or("n/a".to_string(), |r| format!("{:.2e} points/s", r));
        format!(
            "grid eval {} points in {} traversal{} ({rate})",
            stats.grid_points,
            stats.grid_batches,
            if stats.grid_batches == 1 { "" } else { "s" },
        )
    } else {
        "grid eval off".to_string()
    };
    let disk = if stats.disk {
        format!(
            "disk store {}/{} hits ({}, {} written, {} evicted)",
            stats.disk_hits,
            stats.disk_hits + stats.disk_misses,
            pct(stats.disk_hit_rate()),
            stats.disk_writes,
            stats.disk_evictions,
        )
    } else {
        "disk store off".to_string()
    };
    format!(
        "engine total: {} points simulated, sim cache {}/{} hits ({}), annotation cache {}/{} hits ({}, {} built), trace cache {}/{} hits ({}), {} trace{}, policy cache {}/{} hits ({}, {} run{}), {disk}, {}, {grid}, {} worker{}",
        stats.simulated(),
        stats.hits,
        stats.hits + stats.misses,
        pct(stats.sim_hit_rate()),
        stats.annotation_hits,
        stats.annotation_hits + stats.annotations_built,
        pct(stats.annotation_hit_rate()),
        stats.annotations_built,
        stats.trace_hits,
        stats.trace_hits + stats.captures,
        pct(stats.trace_hit_rate()),
        stats.traces,
        if stats.traces == 1 { "" } else { "s" },
        stats.policy_hits,
        stats.policy_hits + stats.policy_misses,
        pct(stats.policy_hit_rate()),
        stats.policy_runs,
        if stats.policy_runs == 1 { "" } else { "s" },
        batching,
        stats.jobs,
        if stats.jobs == 1 { "" } else { "s" }
    )
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with four decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "2.5"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn renders_csv() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f4(0.00005), "0.0001");
    }
}
