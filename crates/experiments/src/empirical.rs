//! Simulation-driven experiments: Table 2, Table 3, Figure 7,
//! Figures 8a/8b, Figures 9a/9b, and the `policy-ext` extension-policy
//! study.
//!
//! Policy energies are priced by the closed-form spectrum evaluator
//! ([`crate::policy::policy_energy_of`]) over each run's per-FU
//! [`fuleak_core::IntervalSpectrum`]s; the `_on` variants additionally
//! memoize every evaluation in the engine's
//! [`crate::policy::PolicyCache`].

use crate::harness::{BenchRun, SuiteResult};
use crate::policy::{policy_energy_of, EVAL_ALPHA};
use crate::result::{Cell, ResultTable};
use crate::scenario::Engine;
use fuleak_core::accounting::PolicyRun;
use fuleak_core::{EnergyModel, IdleHistogram, TechnologyParams};
use fuleak_uarch::CoreConfig;

pub use crate::policy::PolicyKind;

/// Renders Table 2 (the processor configuration actually in use).
pub fn table2() -> ResultTable {
    let c = CoreConfig::alpha21264();
    let mut t = ResultTable::new(
        "table2",
        "Table 2 — architectural parameters",
        ["Parameter", "Value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("Fetch queue", format!("{} entries", c.fetch_queue)),
        (
            "Branch predictor",
            format!(
                "comb. bimodal {} + 2-level {}x{}hist/{} (meta {})",
                c.bimodal_entries,
                c.l1_history_entries,
                c.history_bits,
                c.l2_counter_entries,
                c.meta_entries
            ),
        ),
        ("RAS", format!("{} entries", c.ras_entries)),
        ("BTB", format!("{} sets, {}-way", c.btb_sets, c.btb_ways)),
        (
            "Mispredict latency",
            format!("{} cycles", c.mispredict_latency),
        ),
        ("Fetch/decode/issue width", format!("{}", c.width)),
        ("Reorder buffer", format!("{} entries", c.rob_entries)),
        ("Integer issue", format!("{} entries", c.int_iq_entries)),
        ("FP issue", format!("{} entries", c.fp_iq_entries)),
        ("Physical int regs", format!("{}", c.phys_int_regs)),
        ("Physical fp regs", format!("{}", c.phys_fp_regs)),
        ("Load entries", format!("{}", c.load_queue)),
        ("Store entries", format!("{}", c.store_queue)),
        (
            "ITLB",
            format!(
                "{} entry {}-way, {}K pages, {} cycle miss",
                c.itlb.entries,
                c.itlb.ways,
                c.itlb.page_bytes / 1024,
                c.itlb.miss_latency
            ),
        ),
        (
            "DTLB",
            format!(
                "{} entry {}-way, {}K pages, {} cycle miss",
                c.dtlb.entries,
                c.dtlb.ways,
                c.dtlb.page_bytes / 1024,
                c.dtlb.miss_latency
            ),
        ),
        ("Memory latency", format!("{} cycles", c.memory_latency)),
        (
            "L1 I-cache",
            format!(
                "{} KB, {}-way, {}B line, {} cycle",
                c.l1i.size_bytes / 1024,
                c.l1i.ways,
                c.l1i.line_bytes,
                c.l1i.latency
            ),
        ),
        (
            "L1 D-cache",
            format!(
                "{} KB, {}-way, {}B line, {} cycle",
                c.l1d.size_bytes / 1024,
                c.l1d.ways,
                c.l1d.line_bytes,
                c.l1d.latency
            ),
        ),
        (
            "L2 unified",
            format!(
                "{} MB, {}-way, {}B line, {} cycle",
                c.l2.size_bytes / (1024 * 1024),
                c.l2.ways,
                c.l2.line_bytes,
                c.l2.latency
            ),
        ),
    ];
    for (k, v) in rows {
        t.row([Cell::str(k), Cell::str(v)]);
    }
    t
}

/// Renders Table 3: measured IPCs and FU selection next to the paper's.
pub fn table3(suite: &SuiteResult) -> ResultTable {
    let mut t = ResultTable::new(
        "table3",
        "Table 3 — benchmarks (measured vs paper)",
        [
            "App", "Suite", "Max IPC", "(paper)", "IPC", "(paper)", "FUs", "(paper)",
        ],
    );
    for run in &suite.runs {
        let r = run.reference();
        t.row([
            Cell::str(run.name),
            Cell::str(r.suite),
            Cell::float(run.max_ipc, 3),
            Cell::float(r.paper_max_ipc, 3),
            Cell::float(run.sim.ipc(), 3),
            Cell::float(r.paper_ipc, 3),
            Cell::int(run.fus as i64),
            Cell::int(r.paper_fus as i64),
        ]);
    }
    t
}

/// One Figure 7 series: the suite-average idle-time fraction per
/// log2 interval bucket.
#[derive(Debug, Clone)]
pub struct Fig7Series {
    /// L2 latency the series was simulated at.
    pub l2_latency: u64,
    /// Fraction of total FU time idle, per histogram bucket.
    pub fractions: [f64; IdleHistogram::BUCKETS],
    /// Total idle fraction (the paper quotes 46.8% at L2 = 12).
    pub total_idle_fraction: f64,
}

/// Figure 7: combines every FU of every benchmark "as fractions to
/// give the data equal weight" (paper, Section 5).
pub fn fig7(suite: &SuiteResult) -> Fig7Series {
    let mut acc = [0.0; IdleHistogram::BUCKETS];
    let mut weight = 0usize;
    for run in &suite.runs {
        for fu in &run.sim.fu_idle {
            let mut h = IdleHistogram::new();
            h.record_spectrum(fu);
            let f = h.time_fractions(run.sim.cycles);
            for (a, x) in acc.iter_mut().zip(f.iter()) {
                *a += x;
            }
            weight += 1;
        }
    }
    for a in &mut acc {
        *a /= weight as f64;
    }
    Fig7Series {
        l2_latency: suite.l2_latency,
        total_idle_fraction: acc.iter().sum(),
        fractions: acc,
    }
}

/// Renders Figure 7 for one or two L2 latencies.
pub fn fig7_table(series: &[Fig7Series]) -> ResultTable {
    let mut header = vec!["interval (cycles)".to_string()];
    for s in series {
        header.push(format!("idle fraction (L2={})", s.l2_latency));
    }
    let mut t = ResultTable::new("fig7", "Figure 7 — idle-interval distribution", header);
    for b in 0..IdleHistogram::BUCKETS {
        let mut row = vec![Cell::int(IdleHistogram::bucket_label(b) as i64)];
        for s in series {
            row.push(Cell::float(s.fractions[b], 4));
        }
        t.row(row);
    }
    let mut total = vec![Cell::str("TOTAL")];
    for s in series {
        total.push(Cell::float(s.total_idle_fraction, 4));
    }
    t.row(total);
    t
}

/// The four policies of Figures 8 and 9, in bar order.
pub const POLICIES: [(&str, PolicyKind); 4] = [
    ("MaxSleep", PolicyKind::MaxSleep),
    ("GradualSleep", PolicyKind::GradualSleep),
    ("AlwaysActive", PolicyKind::AlwaysActive),
    ("NoOverhead", PolicyKind::NoOverhead),
];

/// Total energy of one benchmark under one policy, summed over its
/// FUs, in units of the per-FU `E_D` — the spectrum evaluator applied
/// to the run's per-FU idle spectra.
pub fn benchmark_energy(run: &BenchRun, model: &EnergyModel, policy: PolicyKind) -> PolicyRun {
    policy_energy_of(model, policy.form(model, None), &run.sim)
}

/// [`benchmark_energy`] memoized in `engine`'s
/// [`crate::policy::PolicyCache`], keyed by the run's scenario, the
/// resolved policy form, and the model fingerprint. Values are
/// identical to the uncached path (same evaluator, same inputs).
pub fn benchmark_energy_on(
    engine: &Engine,
    run: &BenchRun,
    model: &EnergyModel,
    policy: PolicyKind,
) -> PolicyRun {
    engine.policy_run(&run.scenario, policy.form(model, None), model)
}

/// One Figure 8 row: per-benchmark normalized energies at one `alpha`.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Selected FU count.
    pub fus: usize,
    /// Normalized energy per policy (order of [`POLICIES`]).
    pub energy: [f64; 4],
}

/// Figures 8a/8b rows with a caller-chosen energy evaluator (cached
/// or not — the values are identical either way).
fn fig8_rows<F>(suite: &SuiteResult, p: f64, alpha: f64, energy_of: F) -> Vec<Fig8Row>
where
    F: Fn(&BenchRun, &EnergyModel, PolicyKind) -> PolicyRun,
{
    let tech = TechnologyParams::with_leakage_factor(p).expect("p in range");
    let model = EnergyModel::new(tech, alpha).expect("alpha in range");
    suite
        .runs
        .iter()
        .map(|run| {
            let e_max = model.max_energy(run.sim.cycles as f64) * run.fus as f64;
            let mut energy = [0.0; 4];
            for (slot, (_, kind)) in energy.iter_mut().zip(POLICIES) {
                *slot = energy_of(run, &model, kind).energy.total() / e_max;
            }
            Fig8Row {
                name: run.name,
                fus: run.fus,
                energy,
            }
        })
        .collect()
}

/// Figures 8a/8b: per-benchmark energy of the four policies at leakage
/// factor `p` and activity factor `alpha`, normalized to the
/// 100%-computation baseline `E_max`.
pub fn fig8(suite: &SuiteResult, p: f64, alpha: f64) -> Vec<Fig8Row> {
    fig8_rows(suite, p, alpha, benchmark_energy)
}

/// [`fig8`] with every policy evaluation memoized in `engine`'s
/// policy cache.
pub fn fig8_on(engine: &Engine, suite: &SuiteResult, p: f64, alpha: f64) -> Vec<Fig8Row> {
    fig8_rows(suite, p, alpha, |run, model, kind| {
        benchmark_energy_on(engine, run, model, kind)
    })
}

/// Renders Figure 8 at one technology point, with the suite average
/// (rename via [`ResultTable::named`] for the specific panel).
pub fn fig8_table(suite: &SuiteResult, p: f64, alpha: f64) -> ResultTable {
    fig8_table_from(fig8(suite, p, alpha), p, alpha)
}

/// [`fig8_table`] evaluated through `engine`'s policy cache.
pub fn fig8_table_on(engine: &Engine, suite: &SuiteResult, p: f64, alpha: f64) -> ResultTable {
    fig8_table_from(fig8_on(engine, suite, p, alpha), p, alpha)
}

fn fig8_table_from(rows: Vec<Fig8Row>, p: f64, alpha: f64) -> ResultTable {
    let mut t = ResultTable::new(
        "fig8",
        format!("Figure 8 — normalized energy, p = {p} (alpha = {alpha})"),
        [
            "App (FUs)",
            "MaxSleep",
            "GradualSleep",
            "AlwaysActive",
            "NoOverhead",
        ],
    );
    let mut avg = [0.0; 4];
    for r in &rows {
        t.row([
            Cell::str(format!("{} ({})", r.name, r.fus)),
            Cell::float(r.energy[0], 3),
            Cell::float(r.energy[1], 3),
            Cell::float(r.energy[2], 3),
            Cell::float(r.energy[3], 3),
        ]);
        for (a, e) in avg.iter_mut().zip(r.energy) {
            *a += e;
        }
    }
    for a in &mut avg {
        *a /= rows.len() as f64;
    }
    t.row([
        Cell::str("Average"),
        Cell::float(avg[0], 3),
        Cell::float(avg[1], 3),
        Cell::float(avg[2], 3),
        Cell::float(avg[3], 3),
    ]);
    t
}

/// One Figure 9 row: suite-average relative energy and leakage
/// fraction at one leakage factor.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Leakage factor `p`.
    pub p: f64,
    /// Energy relative to NoOverhead, per policy (MaxSleep,
    /// GradualSleep, AlwaysActive; NoOverhead is 1 by construction).
    pub relative: [f64; 3],
    /// Leakage / total-energy ratio per policy (all four).
    pub leakage_fraction: [f64; 4],
}

/// Figures 9a/9b: suite averages across the technology sweep at
/// `alpha = 0.5`, computed with every available core.
pub fn fig9(suite: &SuiteResult) -> Vec<Fig9Row> {
    fig9_jobs(suite, 0)
}

/// [`fig9`] with an explicit worker count (`0` = all cores). The
/// twenty technology points are independent, so they fan out on a
/// transient [`crate::scenario::parallel_map`] pool (post-processing
/// over an already-simulated suite, so nothing new enters the
/// `SimCache`); output order (and every value) is identical for any
/// worker count.
pub fn fig9_jobs(suite: &SuiteResult, jobs: usize) -> Vec<Fig9Row> {
    fig9_rows(suite, jobs, &benchmark_energy)
}

/// [`fig9_jobs`] with every policy evaluation memoized in `engine`'s
/// policy cache (within one technology point the NoOverhead and
/// leakage-fraction passes re-read the same evaluations, so the cache
/// halves the work even cold).
pub fn fig9_jobs_on(engine: &Engine, suite: &SuiteResult, jobs: usize) -> Vec<Fig9Row> {
    fig9_rows(suite, jobs, &|run, model, kind| {
        benchmark_energy_on(engine, run, model, kind)
    })
}

fn fig9_rows<F>(suite: &SuiteResult, jobs: usize, energy_of: &F) -> Vec<Fig9Row>
where
    F: Fn(&BenchRun, &EnergyModel, PolicyKind) -> PolicyRun + Sync,
{
    crate::scenario::parallel_map(jobs, (1..=20).collect(), |i| {
        let p = i as f64 * 0.05;
        let tech = TechnologyParams::with_leakage_factor(p).expect("p in range");
        let model = EnergyModel::new(tech, 0.5).expect("alpha in range");
        let mut rel = [0.0; 3];
        let mut leak = [0.0; 4];
        for run in &suite.runs {
            let no = energy_of(run, &model, PolicyKind::NoOverhead)
                .energy
                .total();
            for (k, kind) in [
                PolicyKind::MaxSleep,
                PolicyKind::GradualSleep,
                PolicyKind::AlwaysActive,
            ]
            .into_iter()
            .enumerate()
            {
                rel[k] += energy_of(run, &model, kind).energy.total() / no;
            }
            for (k, (_, kind)) in POLICIES.into_iter().enumerate() {
                leak[k] += energy_of(run, &model, kind)
                    .energy
                    .leakage_fraction()
                    .unwrap_or(0.0);
            }
        }
        let n = suite.runs.len() as f64;
        for r in &mut rel {
            *r /= n;
        }
        for l in &mut leak {
            *l /= n;
        }
        Fig9Row {
            p,
            relative: rel,
            leakage_fraction: leak,
        }
    })
}

/// Renders Figure 9a from precomputed sweep rows (see [`fig9`] /
/// [`fig9_jobs`]), so callers rendering both 9a and 9b — like
/// `repro all` — compute the sweep once.
pub fn fig9a_table(rows: &[Fig9Row]) -> ResultTable {
    let mut t = ResultTable::new(
        "fig9a",
        "Figure 9a — energy relative to NoOverhead",
        ["p", "MaxSleep", "GradualSleep", "AlwaysActive"],
    );
    for r in rows {
        t.row([
            Cell::float(r.p, 2),
            Cell::float(r.relative[0], 3),
            Cell::float(r.relative[1], 3),
            Cell::float(r.relative[2], 3),
        ]);
    }
    t
}

/// Renders Figure 9b from precomputed sweep rows (see [`fig9`] /
/// [`fig9_jobs`]).
pub fn fig9b_table(rows: &[Fig9Row]) -> ResultTable {
    let mut t = ResultTable::new(
        "fig9b",
        "Figure 9b — leakage / total energy",
        [
            "p",
            "MaxSleep",
            "GradualSleep",
            "AlwaysActive",
            "NoOverhead",
        ],
    );
    for r in rows {
        t.row([
            Cell::float(r.p, 2),
            Cell::float(r.leakage_fraction[0], 3),
            Cell::float(r.leakage_fraction[1], 3),
            Cell::float(r.leakage_fraction[2], 3),
            Cell::float(r.leakage_fraction[3], 3),
        ]);
    }
    t
}

/// The `policy-ext` column order: the paper's proposed design first,
/// then the two "more complex control strategies", then the bounds.
pub const EXT_POLICIES: [PolicyKind; 6] = [
    PolicyKind::GradualSleep,
    PolicyKind::TimeoutSleep,
    PolicyKind::AdaptiveSleep,
    PolicyKind::MaxSleep,
    PolicyKind::AlwaysActive,
    PolicyKind::NoOverhead,
];

/// The `repro policy-ext` experiment: normalized per-benchmark energy
/// of the extension controllers (breakeven-timeout `TimeoutSleep`,
/// EWMA-predicting `AdaptiveSleep`) next to `GradualSleep` and the
/// bounds, at both of the paper's technology points — reproducing the
/// conclusion that more complex control strategies do not beat the
/// simple staggered design. Every evaluation goes through `engine`'s
/// policy cache.
pub fn policy_ext_table(engine: &Engine, suite: &SuiteResult) -> ResultTable {
    let mut t = ResultTable::new(
        "policy-ext",
        format!("Extension policies vs GradualSleep — E/E_max (alpha = {EVAL_ALPHA})"),
        [
            "App (FUs)",
            "p",
            "GradualSleep",
            "TimeoutSleep",
            "AdaptiveSleep",
            "MaxSleep",
            "AlwaysActive",
            "NoOverhead",
        ],
    );
    let mut deltas = Vec::new();
    for p in [0.05, 0.5] {
        let tech = TechnologyParams::with_leakage_factor(p).expect("p in range");
        let model = EnergyModel::new(tech, EVAL_ALPHA).expect("alpha in range");
        let mut avg = [0.0; 6];
        for run in &suite.runs {
            let e_max = model.max_energy(run.sim.cycles as f64) * run.fus as f64;
            let mut row = vec![
                Cell::str(format!("{} ({})", run.name, run.fus)),
                Cell::float(p, 2),
            ];
            for (slot, kind) in avg.iter_mut().zip(EXT_POLICIES) {
                let e = benchmark_energy_on(engine, run, &model, kind)
                    .energy
                    .total()
                    / e_max;
                *slot += e;
                row.push(Cell::float(e, 3));
            }
            t.row(row);
        }
        for a in &mut avg {
            *a /= suite.runs.len() as f64;
        }
        let mut row = vec![Cell::str("Average"), Cell::float(p, 2)];
        row.extend(avg.iter().map(|&a| Cell::float(a, 3)));
        t.row(row);
        // How much the complex controllers trail (positive) or lead
        // (negative) GradualSleep, suite-average.
        let pct = |a: f64| 100.0 * (a - avg[0]) / avg[0];
        deltas.push(format!(
            "p = {p}: TimeoutSleep {:+.1}%, AdaptiveSleep {:+.1}%",
            pct(avg[1]),
            pct(avg[2])
        ));
    }
    t.note(format!(
        "extension energy vs GradualSleep (suite average): {} — complex control buys no significant advantage",
        deltas.join("; ")
    ));
    t.note(
        "AdaptiveSleep is history-dependent; its spectrum evaluation observes each FU's \
         intervals in canonical ascending-length order, not trace order"
            .to_string(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_suite, Budget};
    use std::sync::OnceLock;

    fn quick_suite() -> &'static SuiteResult {
        static SUITE: OnceLock<SuiteResult> = OnceLock::new();
        SUITE.get_or_init(|| run_suite(12, Budget::Quick))
    }

    #[test]
    fn table2_renders_table_values() {
        let s = table2().render();
        assert!(s.contains("128 entries"));
        assert!(s.contains("80 cycles"));
        assert!(s.contains("2 MB"));
    }

    #[test]
    fn table3_shows_all_benchmarks() {
        let s = table3(quick_suite()).render();
        for name in [
            "health", "mst", "gcc", "gzip", "mcf", "parser", "twolf", "vortex", "vpr",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
    }

    #[test]
    fn fig7_short_intervals_dominate() {
        // Paper: ~75% of idle time in intervals within the L2 latency
        // window; nearly all below 128 cycles. The synthetic suite
        // should at least concentrate idle time at short intervals.
        let series = fig7(quick_suite());
        let total = series.total_idle_fraction;
        assert!(total > 0.2 && total < 0.8, "idle fraction {total}");
        let below_128: f64 = series.fractions[..8].iter().sum();
        assert!(
            below_128 / total > 0.5,
            "fraction below 128 cycles: {}",
            below_128 / total
        );
    }

    #[test]
    fn fig8_low_p_favors_always_active() {
        // Figure 8a: at p = 0.05, MaxSleep uses more energy than
        // AlwaysActive on average; both near NoOverhead.
        let rows = fig8(quick_suite(), 0.05, 0.5);
        let avg = |k: usize| rows.iter().map(|r| r.energy[k]).sum::<f64>() / rows.len() as f64;
        assert!(
            avg(0) > avg(2),
            "MaxSleep {} vs AlwaysActive {}",
            avg(0),
            avg(2)
        );
        // GradualSleep within a few percent of AlwaysActive.
        assert!((avg(1) - avg(2)).abs() / avg(2) < 0.10);
    }

    #[test]
    fn fig8_high_p_favors_max_sleep() {
        // Figure 8b: at p = 0.5 MaxSleep beats AlwaysActive; Gradual
        // tracks MaxSleep.
        let rows = fig8(quick_suite(), 0.5, 0.5);
        let avg = |k: usize| rows.iter().map(|r| r.energy[k]).sum::<f64>() / rows.len() as f64;
        assert!(avg(0) < avg(2));
        assert!((avg(1) - avg(0)).abs() / avg(0) < 0.10);
        // NoOverhead is the floor.
        for r in &rows {
            for k in 0..3 {
                assert!(r.energy[3] <= r.energy[k] + 1e-12);
            }
        }
    }

    #[test]
    fn fig9a_gradual_tracks_lower_envelope() {
        let rows = fig9(quick_suite());
        for r in &rows {
            let envelope = r.relative[0].min(r.relative[2]);
            assert!(
                r.relative[1] <= envelope * 1.15 + 1e-9,
                "p={}: gradual {} vs envelope {}",
                r.p,
                r.relative[1],
                envelope
            );
            // Everything is at or above the NoOverhead floor.
            for k in 0..3 {
                assert!(r.relative[k] >= 1.0 - 1e-9);
            }
        }
        // The MaxSleep and AlwaysActive curves cross somewhere.
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        assert!(first.relative[0] > first.relative[2]);
        assert!(last.relative[0] < last.relative[2]);
    }

    #[test]
    fn fig9b_leakage_fraction_rises_with_p() {
        let rows = fig9(quick_suite());
        let aa = |i: usize| rows[i].leakage_fraction[2];
        assert!(aa(0) < aa(9));
        assert!(aa(9) < aa(19));
        // Paper anchors: ~13% at p=0.05 (we check p=0.05 is the first
        // point), ~60% at p=0.5.
        let p05 = rows.iter().find(|r| (r.p - 0.5).abs() < 1e-9).unwrap();
        assert!(
            (0.4..=0.75).contains(&p05.leakage_fraction[2]),
            "AlwaysActive leakage fraction at p=0.5: {}",
            p05.leakage_fraction[2]
        );
    }

    #[test]
    fn renders() {
        let s = quick_suite();
        assert!(fig7_table(&[fig7(s)]).render().contains("TOTAL"));
        assert!(fig8_table(s, 0.05, 0.5).render().contains("Average"));
        let rows = fig9_jobs(s, 1);
        assert!(fig9a_table(&rows).render().contains("GradualSleep"));
        assert!(fig9b_table(&rows).render().contains("NoOverhead"));
    }
}
