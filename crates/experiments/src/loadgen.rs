//! Closed-loop HTTP load generator for the serving tier.
//!
//! Dependency-free measurement client for `repro serve`: N client
//! threads each issue M requests back-to-back (closed loop — the
//! next request starts only after the previous response is fully
//! read), either over one keep-alive connection per client or a
//! fresh connection per request. The merged per-request latencies
//! yield throughput and p50/p90/p99, which `repro bench` records in
//! `BENCH_PR10.json`.
//!
//! This module measures wallclock by design; it is exempt from the
//! fuleak-lint wallclock rule alongside `serve.rs` and the bench
//! harness, and it never touches result rendering.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// What to run: where, which route, how many clients, how hard.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Request target, e.g. `/sweep?bench=gzip&format=json`.
    pub path: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
    /// Reuse one connection per client (`true`) or open a fresh
    /// connection with `Connection: close` per request (`false`).
    pub keep_alive: bool,
}

impl LoadSpec {
    /// A spec with the defaults `repro loadgen` advertises.
    pub fn new(addr: impl Into<String>, path: impl Into<String>) -> Self {
        LoadSpec {
            addr: addr.into(),
            path: path.into(),
            clients: 4,
            requests: 32,
            keep_alive: true,
        }
    }
}

/// Merged results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Responses completed successfully.
    pub requests: usize,
    /// Requests that failed (connect, write, short/invalid read).
    pub errors: usize,
    /// Total response body bytes read.
    pub body_bytes: u64,
    /// Wallclock for the whole run.
    pub elapsed_seconds: f64,
    /// Completed requests per second of wallclock.
    pub throughput_rps: f64,
    /// Nearest-rank latency percentiles over completed requests.
    pub p50_micros: u64,
    /// 90th percentile.
    pub p90_micros: u64,
    /// 99th percentile.
    pub p99_micros: u64,
    /// Slowest completed request.
    pub max_micros: u64,
}

impl LoadReport {
    /// Renders the report as JSON with deterministic key order.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests\": {}, \"errors\": {}, \"body_bytes\": {}, ",
                "\"elapsed_seconds\": {:.6}, \"throughput_rps\": {:.1}, ",
                "\"p50_micros\": {}, \"p90_micros\": {}, \"p99_micros\": {}, ",
                "\"max_micros\": {}}}"
            ),
            self.requests,
            self.errors,
            self.body_bytes,
            self.elapsed_seconds,
            self.throughput_rps,
            self.p50_micros,
            self.p90_micros,
            self.p99_micros,
            self.max_micros,
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One completed exchange: latency and body size.
struct Exchange {
    micros: u64,
    body_len: usize,
    /// Server asked us to drop the connection (`Connection: close`).
    close: bool,
}

/// Writes one GET and reads the full response off an established
/// connection. Returns the exchange stats or an error (the caller
/// reconnects on error).
fn exchange(
    reader: &mut BufReader<TcpStream>,
    path: &str,
    keep_alive: bool,
) -> io::Result<Exchange> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: {connection}\r\n\r\n");
    let started = Instant::now();
    reader.get_mut().write_all(request.as_bytes())?;
    let mut status = String::new();
    reader.read_line(&mut status)?;
    if !status.starts_with("HTTP/1.1 200") {
        return Err(io::Error::other(format!(
            "unexpected status: {}",
            status.trim_end()
        )));
    }
    let mut content_length: Option<usize> = None;
    let mut close = !keep_alive;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    let body_len =
        content_length.ok_or_else(|| io::Error::other("response without Content-Length"))?;
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body)?;
    let micros = started.elapsed().as_micros() as u64;
    Ok(Exchange {
        micros,
        body_len,
        close,
    })
}

struct ClientTally {
    latencies: Vec<u64>,
    errors: usize,
    body_bytes: u64,
}

/// One closed-loop client: `requests` sequential exchanges, reusing
/// the connection in keep-alive mode (reconnecting when the server
/// closes it) or dialing fresh per request otherwise.
fn run_client(spec: &LoadSpec) -> ClientTally {
    let mut tally = ClientTally {
        latencies: Vec::with_capacity(spec.requests),
        errors: 0,
        body_bytes: 0,
    };
    let mut conn: Option<BufReader<TcpStream>> = None;
    for _ in 0..spec.requests {
        if conn.is_none() {
            match TcpStream::connect(&spec.addr) {
                Ok(stream) => conn = Some(BufReader::new(stream)),
                Err(_) => {
                    tally.errors += 1;
                    continue;
                }
            }
        }
        let reader = conn.as_mut().expect("connection established above");
        match exchange(reader, &spec.path, spec.keep_alive) {
            Ok(done) => {
                tally.latencies.push(done.micros);
                tally.body_bytes += done.body_len as u64;
                if done.close || !spec.keep_alive {
                    conn = None;
                }
            }
            Err(_) => {
                tally.errors += 1;
                conn = None;
            }
        }
    }
    tally
}

/// Runs the closed-loop workload and merges per-client tallies into
/// one report.
pub fn run(spec: &LoadSpec) -> LoadReport {
    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients.max(1))
            .map(|_| scope.spawn(|| run_client(spec)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let elapsed_seconds = started.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0;
    let mut body_bytes = 0u64;
    for tally in tallies {
        latencies.extend(tally.latencies);
        errors += tally.errors;
        body_bytes += tally.body_bytes;
    }
    latencies.sort_unstable();
    let requests = latencies.len();
    LoadReport {
        requests,
        errors,
        body_bytes,
        elapsed_seconds,
        throughput_rps: if elapsed_seconds > 0.0 {
            requests as f64 / elapsed_seconds
        } else {
            0.0
        },
        p50_micros: percentile(&latencies, 50.0),
        p90_micros: percentile(&latencies, 90.0),
        p99_micros: percentile(&latencies, 99.0),
        max_micros: latencies.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles_match_hand_counts() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 90.0), 90);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn report_json_has_deterministic_keys() {
        let report = LoadReport {
            requests: 10,
            errors: 0,
            body_bytes: 1234,
            elapsed_seconds: 0.5,
            throughput_rps: 20.0,
            p50_micros: 100,
            p90_micros: 200,
            p99_micros: 300,
            max_micros: 400,
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"requests\": 10, \"errors\": 0"));
        assert!(json.ends_with("\"max_micros\": 400}"));
        let requests_pos = json.find("\"requests\"").unwrap();
        let p99_pos = json.find("\"p99_micros\"").unwrap();
        assert!(requests_pos < p99_pos);
    }

    #[test]
    fn loadgen_drives_a_minimal_server_over_keep_alive_and_close() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Serve exactly the connections the two runs below open:
            // 2 keep-alive clients, then 2 close-mode clients x 3
            // requests each.
            for _ in 0..8 {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                let mut reader = BufReader::new(stream);
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    if !line.starts_with("GET ") {
                        continue;
                    }
                    let mut close = false;
                    loop {
                        let mut header = String::new();
                        if reader.read_line(&mut header).unwrap_or(0) == 0 {
                            return;
                        }
                        if header.trim_end().is_empty() {
                            break;
                        }
                        if header.to_ascii_lowercase().contains("connection: close") {
                            close = true;
                        }
                    }
                    let body = b"ok\n";
                    let head = format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
                        body.len(),
                        if close { "close" } else { "keep-alive" }
                    );
                    let out = reader.get_mut();
                    if out.write_all(head.as_bytes()).is_err() || out.write_all(body).is_err() {
                        break;
                    }
                    if close {
                        break;
                    }
                }
            }
        });

        let mut spec = LoadSpec::new(addr.clone(), "/health");
        spec.clients = 2;
        spec.requests = 3;
        let kept = run(&spec);
        assert_eq!(kept.requests, 6);
        assert_eq!(kept.errors, 0);
        assert_eq!(kept.body_bytes, 18);
        assert!(kept.p50_micros <= kept.p99_micros);

        spec.keep_alive = false;
        let closed = run(&spec);
        assert_eq!(closed.requests, 6);
        assert_eq!(closed.errors, 0);
        server.join().unwrap();
    }
}
