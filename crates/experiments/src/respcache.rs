//! Canonical response cache for the serving tier.
//!
//! The daemon's contract is that every body it serves is the exact
//! `to_json()`/`to_csv()` bytes the CLI would print for the same
//! request. That makes rendered responses pure functions of the
//! *canonicalized* request — the parsed [`SweepSpec`]/[`ExploreSpec`]
//! (query keys go through the same `cli.rs` grammar as the CLI
//! flags), the experiment name, and the wire format — so they can be
//! cached and replayed byte-for-byte:
//!
//! * [`sweep_key`] / [`explore_key`] / [`experiment_key`] serialize a
//!   parsed request into canonical key bytes (every axis name and
//!   value in spec order, floats by `to_bits`, budgets by instruction
//!   count — the same platform-stable little-endian builders and
//!   FNV-1a addressing as the PR 8 store keys);
//! * [`ResponseCache`] holds the rendered bodies in a size-bounded
//!   in-memory LRU (logical-clock recency, no wallclock), with an
//!   optional `resp/` namespace in the [`ResultStore`] as a
//!   persistent second tier (versioned `FLKS` entries; stale or
//!   corrupt entries are silent misses, never a crash).
//!
//! Entries store the full canonical key alongside the body and
//! compare it on every lookup, so an FNV-1a address collision can
//! only cost a miss, never serve the wrong bytes. The byte-identity
//! invariant — a cached response equals a fresh render — is pinned by
//! tests here and in `tests/store_serve.rs`.

use crate::explore::ExploreSpec;
use crate::harness::Budget;
use crate::scenario::{lock_unpoisoned, SweepSpec};
use crate::store::ResultStore;
use fuleak_core::codec::{put_bytes, put_u32, put_u64, put_u8};
use fuleak_core::fxhash::FxHashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Route tags keep sweep/explore/experiment keys disjoint even if
/// their parameter serializations were ever to coincide.
const TAG_SWEEP: u8 = 1;
const TAG_EXPLORE: u8 = 2;
const TAG_EXPERIMENT: u8 = 3;

/// Wire formats a response can be cached under, tagged into the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFormat {
    /// `ResultTable::to_json` bytes.
    Json,
    /// `ResultTable::to_csv` bytes.
    Csv,
}

impl BodyFormat {
    fn tag(self) -> u8 {
        match self {
            BodyFormat::Json => 1,
            BodyFormat::Csv => 2,
        }
    }
}

fn put_budget(out: &mut Vec<u8>, budget: Budget) {
    // Instruction count only, like the store's sim keys: `--quick`
    // and `--budget 500000` render identical bytes, so they must
    // share an entry.
    put_u64(out, budget.instructions());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Canonical key bytes for a parsed sweep request.
pub fn sweep_key(spec: &SweepSpec, format: BodyFormat) -> Vec<u8> {
    let mut key = Vec::new();
    put_u8(&mut key, TAG_SWEEP);
    put_u8(&mut key, format.tag());
    put_budget(&mut key, spec.budget());
    put_u64(&mut key, spec.bench_names().len() as u64);
    for bench in spec.bench_names() {
        put_bytes(&mut key, bench.as_bytes());
    }
    put_u64(&mut key, spec.axes().len() as u64);
    for axis in spec.axes() {
        put_bytes(&mut key, axis.name.as_bytes());
        put_u64(&mut key, axis.values.len() as u64);
        for &v in &axis.values {
            put_u64(&mut key, v);
        }
    }
    // Evaluation axes multiply result rows, so they are part of the
    // rendered bytes; serialize the expanded, deduplicated point list
    // the table generator iterates.
    put_u8(&mut key, u8::from(spec.has_eval_axes()));
    if spec.has_eval_axes() {
        let points = spec.eval_points();
        put_u64(&mut key, points.len() as u64);
        for p in points {
            put_bytes(&mut key, p.policy.name().as_bytes());
            match p.slices {
                Some(n) => {
                    put_u8(&mut key, 1);
                    put_u32(&mut key, n);
                }
                None => put_u8(&mut key, 0),
            }
            put_f64(&mut key, p.leak);
            put_f64(&mut key, p.transition);
        }
    }
    key
}

/// Canonical key bytes for a parsed explore request.
pub fn explore_key(spec: &ExploreSpec, format: BodyFormat) -> Vec<u8> {
    let mut key = Vec::new();
    put_u8(&mut key, TAG_EXPLORE);
    put_u8(&mut key, format.tag());
    put_budget(&mut key, spec.budget());
    put_u64(&mut key, spec.bench_names().len() as u64);
    for bench in spec.bench_names() {
        put_bytes(&mut key, bench.as_bytes());
    }
    put_u64(&mut key, spec.policy_kinds().len() as u64);
    for kind in spec.policy_kinds() {
        put_bytes(&mut key, kind.name().as_bytes());
    }
    put_u64(&mut key, spec.slice_counts().len() as u64);
    for &n in spec.slice_counts() {
        put_u32(&mut key, n);
    }
    put_u64(&mut key, spec.leak_values().len() as u64);
    for &p in spec.leak_values() {
        put_f64(&mut key, p);
    }
    put_u64(&mut key, spec.transition_values().len() as u64);
    for &c in spec.transition_values() {
        put_f64(&mut key, c);
    }
    key
}

/// Canonical key bytes for a registry-experiment request.
pub fn experiment_key(name: &str, budget: Budget, format: BodyFormat) -> Vec<u8> {
    let mut key = Vec::new();
    put_u8(&mut key, TAG_EXPERIMENT);
    put_u8(&mut key, format.tag());
    put_budget(&mut key, budget);
    put_bytes(&mut key, name.as_bytes());
    key
}

/// One cached body: the full canonical key (compared on every lookup,
/// so address collisions cost a miss instead of serving wrong bytes),
/// the rendered bytes, and a logical-clock recency stamp.
#[derive(Debug)]
struct CacheEntry {
    key: Vec<u8>,
    body: Arc<Vec<u8>>,
    stamp: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: FxHashMap<u64, CacheEntry>,
    bytes: usize,
}

/// A size-bounded LRU over rendered response bodies, addressed by
/// FNV-1a of the canonical request key, with an optional persistent
/// second tier in the [`ResultStore`]'s `resp/` namespace.
///
/// Recency is a logical counter bumped per lookup — no wallclock —
/// and eviction drops least-recently-used entries until the byte
/// budget holds. All methods take `&self`; one cache serves every
/// server worker.
#[derive(Debug)]
pub struct ResponseCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    store: Mutex<Option<Arc<ResultStore>>>,
}

impl ResponseCache {
    /// Creates a cache bounded to `capacity` total body bytes.
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            store: Mutex::new(None),
        }
    }

    /// Attaches (or detaches) the persistent tier. Memory stays
    /// authoritative; the store is consulted on memory misses and
    /// populated behind inserts.
    pub fn set_store(&self, store: Option<Arc<ResultStore>>) {
        *lock_unpoisoned(&self.store) = store;
    }

    /// The cached body for a canonical key, consulting memory first
    /// and then the persistent tier (a disk hit re-seeds memory).
    pub fn get(&self, key: &[u8]) -> Option<Arc<Vec<u8>>> {
        let addr = fuleak_core::codec::fnv1a(key);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = lock_unpoisoned(&self.inner);
            if let Some(entry) = inner.map.get_mut(&addr) {
                if entry.key == key {
                    entry.stamp = stamp;
                    let body = Arc::clone(&entry.body);
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(body);
                }
            }
        }
        let disk = lock_unpoisoned(&self.store).clone();
        if let Some(body) = disk.as_ref().and_then(|st| st.load_response(key)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(self.insert(key, body));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Caches a freshly rendered body under its canonical key,
    /// writing through to the persistent tier if attached. Returns
    /// the shared copy to serve from.
    pub fn put(&self, key: &[u8], body: Vec<u8>) -> Arc<Vec<u8>> {
        if let Some(st) = lock_unpoisoned(&self.store).clone() {
            st.save_response(key, &body);
        }
        self.insert(key, body)
    }

    fn insert(&self, key: &[u8], body: Vec<u8>) -> Arc<Vec<u8>> {
        let body = Arc::new(body);
        if body.len() > self.capacity {
            // Larger than the whole budget: serve it, don't cache it.
            return body;
        }
        let addr = fuleak_core::codec::fnv1a(key);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(old) = inner.map.remove(&addr) {
            inner.bytes -= old.body.len();
        }
        inner.bytes += body.len();
        inner.map.insert(
            addr,
            CacheEntry {
                key: key.to_vec(),
                body: Arc::clone(&body),
                stamp,
            },
        );
        while inner.bytes > self.capacity {
            // Evict the least-recently-used entry: an O(n) stamp scan,
            // fine at the entry counts a response cache holds (bodies
            // dominate the footprint, not entries).
            let Some((&victim, _)) = inner
                .map
                .iter()
                .filter(|&(&a, _)| a != addr)
                .min_by_key(|(_, e)| e.stamp)
            else {
                break;
            };
            if let Some(old) = inner.map.remove(&victim) {
                inner.bytes -= old.body.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        body
    }

    /// Bodies currently held in memory.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).map.len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total body bytes currently held in memory.
    pub fn bytes(&self) -> usize {
        lock_unpoisoned(&self.inner).bytes
    }

    /// Lookups served (memory or disk) since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the byte bound since construction.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli;

    fn spec_from_flags(pairs: &[(&str, &str)]) -> SweepSpec {
        let mut spec = SweepSpec::new(Budget::Custom(50_000));
        for (flag, value) in pairs {
            spec = cli::apply_sweep_flag(spec, flag, value).unwrap();
        }
        spec
    }

    #[test]
    fn equal_requests_share_a_key_and_different_ones_do_not() {
        let a = spec_from_flags(&[("--bench", "gzip"), ("--int-fus", "1:2")]);
        let b = spec_from_flags(&[("--bench", "gzip"), ("--int-fus", "1,2")]);
        assert_eq!(
            sweep_key(&a, BodyFormat::Json),
            sweep_key(&b, BodyFormat::Json),
            "range and list spellings canonicalize identically"
        );
        let c = spec_from_flags(&[("--bench", "gzip"), ("--int-fus", "1:3")]);
        assert_ne!(
            sweep_key(&a, BodyFormat::Json),
            sweep_key(&c, BodyFormat::Json)
        );
        assert_ne!(
            sweep_key(&a, BodyFormat::Json),
            sweep_key(&a, BodyFormat::Csv),
            "format is part of the key"
        );
        let quick = SweepSpec::new(Budget::Quick);
        let custom = SweepSpec::new(Budget::Custom(500_000));
        assert_eq!(
            sweep_key(&quick, BodyFormat::Json),
            sweep_key(&custom, BodyFormat::Json),
            "budgets alias by instruction count, like store keys"
        );
    }

    #[test]
    fn route_and_parameter_tags_keep_keys_disjoint() {
        let sweep = SweepSpec::new(Budget::Quick);
        let explore = ExploreSpec::new(Budget::Quick);
        assert_ne!(
            sweep_key(&sweep, BodyFormat::Json),
            explore_key(&explore, BodyFormat::Json)
        );
        assert_ne!(
            experiment_key("table3", Budget::Quick, BodyFormat::Json),
            experiment_key("figure7", Budget::Quick, BodyFormat::Json)
        );
    }

    #[test]
    fn cache_round_trips_exact_bytes() {
        let cache = ResponseCache::new(1 << 20);
        let key = experiment_key("table3", Budget::Quick, BodyFormat::Json);
        assert!(cache.get(&key).is_none());
        let body = b"{\"rows\": []}\n".to_vec();
        let served = cache.put(&key, body.clone());
        assert_eq!(*served, body);
        let again = cache.get(&key).expect("cached");
        assert_eq!(*again, body, "cached bytes must be identical");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_eviction_respects_the_byte_bound_and_recency() {
        let cache = ResponseCache::new(10);
        let ka = experiment_key("a", Budget::Quick, BodyFormat::Json);
        let kb = experiment_key("b", Budget::Quick, BodyFormat::Json);
        let kc = experiment_key("c", Budget::Quick, BodyFormat::Json);
        cache.put(&ka, vec![1; 4]);
        cache.put(&kb, vec![2; 4]);
        assert!(cache.get(&ka).is_some(), "touch A so B is the LRU");
        cache.put(&kc, vec![3; 4]);
        assert!(cache.bytes() <= 10);
        assert!(cache.get(&kb).is_none(), "B was least recently used");
        assert!(cache.get(&ka).is_some());
        assert!(cache.get(&kc).is_some());
        assert_eq!(cache.evictions(), 1);
        // A body larger than the whole budget is served, not cached.
        let big = cache.put(&ka, vec![9; 64]);
        assert_eq!(big.len(), 64);
        assert!(cache.bytes() <= 10);
    }

    #[test]
    fn disk_tier_survives_a_fresh_memory_cache() {
        let dir = std::env::temp_dir().join(format!(
            "fuleak-respcache-test-{}-{:x}",
            std::process::id(),
            fuleak_core::codec::fnv1a(b"disk_tier_survives")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let key = experiment_key("table3", Budget::Quick, BodyFormat::Csv);
        let body = b"a,b\n1,2\n".to_vec();
        {
            let cache = ResponseCache::new(1 << 20);
            cache.set_store(Some(Arc::clone(&store)));
            cache.put(&key, body.clone());
        }
        let fresh = ResponseCache::new(1 << 20);
        fresh.set_store(Some(Arc::clone(&store)));
        let served = fresh.get(&key).expect("disk tier answers");
        assert_eq!(*served, body);
        assert_eq!(fresh.len(), 1, "disk hit re-seeds memory");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
