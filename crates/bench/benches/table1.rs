//! Bench: regenerate Table 1 (gate characterization) and validate its
//! derived ratios.

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_domino::GateCharacterization;
use fuleak_experiments::analytic;

fn bench(c: &mut Criterion) {
    // Shape check: the dual-Vt leakage asymmetry the table reports.
    let g = GateCharacterization::dual_vt_or8();
    assert!(g.energies.leak_hi / g.energies.leak_lo > 1900.0);
    c.bench_function("table1_render", |b| {
        b.iter(|| std::hint::black_box(analytic::table1().render()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
