//! Bench: regenerate Figure 5c (GradualSleep transition energy).

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_experiments::analytic;

fn bench(c: &mut Criterion) {
    // Shape check: GradualSleep between the extremes.
    let rows = analytic::fig5c();
    assert!(rows[2].gradual_sleep < rows[2].max_sleep);
    assert!(rows[100].gradual_sleep < rows[100].always_active);
    c.bench_function("fig5c_series", |b| {
        b.iter(|| std::hint::black_box(analytic::fig5c()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
