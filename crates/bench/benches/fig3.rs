//! Bench: regenerate Figure 3 (sleep vs uncontrolled idle on the
//! 500-gate circuit model).

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_experiments::analytic;

fn bench(c: &mut Criterion) {
    // Shape check: breakeven near 17 cycles at alpha = 0.1.
    let rows = analytic::fig3();
    let a01: Vec<_> = rows.iter().filter(|r| r.alpha == 0.1).collect();
    assert!(a01[10].sleep_pj > a01[10].uncontrolled_pj);
    assert!(a01[20].sleep_pj < a01[20].uncontrolled_pj);
    c.bench_function("fig3_series", |b| {
        b.iter(|| std::hint::black_box(analytic::fig3()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
