//! Bench: the simulation hot path — functional execution vs packed
//! trace replay, and a scenario point driven each way.
//!
//! This is the regression harness for the trace-reuse + online
//! idle-recording overhaul: `capture` is the one-time cost of
//! encoding a benchmark's trace, `replay` is what every subsequent
//! FU-count/L2-latency point pays instead of `execute`, and the
//! `point_*` pair shows the end-to-end effect on one timing
//! simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuleak_experiments::harness::Budget;
use fuleak_experiments::scenario::{Engine, Scenario, SweepSpec};
use fuleak_uarch::{annotate, CoreConfig, TimingKernel};
use fuleak_workloads::{Benchmark, EncodedTrace};

const BUDGET: u64 = 200_000;
const BENCH: &str = "gzip";

fn scenario(fus: usize) -> Scenario {
    Scenario::paper(BENCH, fus, 12, Budget::Custom(BUDGET))
}

fn bench(c: &mut Criterion) {
    let reference = Benchmark::by_name(BENCH).unwrap();
    let trace = EncodedTrace::capture(&mut reference.instantiate(), BUDGET).unwrap();
    assert_eq!(trace.len(), BUDGET as usize);
    // Replay must be bit-identical to fresh execution before its
    // speed means anything.
    assert_eq!(scenario(2).run_trace(&trace), scenario(2).run().unwrap());

    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);
    group.bench_function("execute_functional", |b| {
        b.iter(|| {
            let mut machine = reference.instantiate();
            let retired = machine.run(BUDGET).filter(|r| r.is_ok()).count();
            black_box(retired)
        })
    });
    group.bench_function("capture_packed_trace", |b| {
        b.iter(|| {
            let t = EncodedTrace::capture(&mut reference.instantiate(), BUDGET).unwrap();
            black_box(t.len())
        })
    });
    group.bench_function("replay_packed_trace", |b| {
        b.iter(|| black_box(trace.iter().count()))
    });
    group.bench_function("point_fresh_execution", |b| {
        b.iter(|| black_box(scenario(2).run().unwrap().cycles))
    });
    group.bench_function("point_trace_replay", |b| {
        b.iter(|| black_box(scenario(2).run_trace(&trace).cycles))
    });
    // The two-phase split: `annotate_trace` is the once-per-geometry
    // cost, `timing_kernel_replay` is what every timing-axis point
    // pays instead of `point_trace_replay` (the direct path).
    let cfg = CoreConfig::with_int_fus(2);
    let annotation = annotate(&cfg, &trace);
    let mut kernel = TimingKernel::new();
    assert_eq!(
        kernel.run(&annotation, &cfg),
        scenario(2).run_trace(&trace),
        "two-phase must equal the direct path before its speed means anything"
    );
    group.bench_function("annotate_trace", |b| {
        b.iter(|| black_box(annotate(&cfg, &trace).len()))
    });
    group.bench_function("timing_kernel_replay", |b| {
        b.iter(|| black_box(kernel.run(&annotation, &cfg).cycles))
    });
    // The engine-level win: an FU × L2 sweep of one benchmark (8
    // timing points) against a fresh engine captures the functional
    // trace once and replays it everywhere.
    group.bench_function("engine_fu_l2_sweep", |b| {
        b.iter(|| {
            let engine = Engine::sequential();
            let spec = SweepSpec::new(Budget::Custom(BUDGET))
                .benches([BENCH])
                .l2_latencies([12, 32]);
            engine.run_sweep(&spec);
            assert_eq!(engine.trace_cache().captures(), 1);
            black_box(engine.cache().len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
