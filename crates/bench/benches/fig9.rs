//! Bench: Figures 9a/9b (technology sweep averages).

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_experiments::empirical::{fig9, fig9_jobs};
use fuleak_experiments::harness::{run_suite_on, Budget};
use fuleak_experiments::scenario::Engine;

fn bench(c: &mut Criterion) {
    let engine = Engine::new(0); // fan the suite points out across cores
    let suite = run_suite_on(&engine, 12, Budget::Quick);
    let rows = fig9(&suite);
    // Shape check: the curves cross and leakage fraction rises.
    assert!(rows[0].relative[0] > rows[0].relative[2]);
    assert!(rows.last().unwrap().relative[0] < rows.last().unwrap().relative[2]);
    // Determinism check: the parallel sweep is value-identical to a
    // sequential one.
    let seq = fig9_jobs(&suite, 1);
    assert_eq!(rows.len(), seq.len());
    for (a, b) in rows.iter().zip(&seq) {
        assert_eq!(a.relative, b.relative);
        assert_eq!(a.leakage_fraction, b.leakage_fraction);
    }
    c.bench_function("fig9_sweep_parallel", |b| {
        b.iter(|| std::hint::black_box(fig9(&suite)))
    });
    c.bench_function("fig9_sweep_sequential", |b| {
        b.iter(|| std::hint::black_box(fig9_jobs(&suite, 1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
