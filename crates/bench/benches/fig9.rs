//! Bench: Figures 9a/9b (technology sweep averages).

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_experiments::empirical::fig9;
use fuleak_experiments::harness::{run_suite, Budget};

fn bench(c: &mut Criterion) {
    let suite = run_suite(12, Budget::Quick);
    let rows = fig9(&suite);
    // Shape check: the curves cross and leakage fraction rises.
    assert!(rows[0].relative[0] > rows[0].relative[2]);
    assert!(rows.last().unwrap().relative[0] < rows.last().unwrap().relative[2]);
    c.bench_function("fig9_sweep", |b| {
        b.iter(|| std::hint::black_box(fig9(&suite)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
