//! Bench: regenerate Figures 4a-4d (breakeven sweep and closed-form
//! policy energies).

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_experiments::analytic;

fn bench(c: &mut Criterion) {
    // Shape checks: 1/p falloff (4a) and the MaxSleep/AlwaysActive
    // crossover (4b).
    let a = analytic::fig4a();
    assert!(a[4].breakeven[1] > a[49].breakeven[1] * 5.0);
    let b4 = analytic::fig4_policies(10.0, &[0.1]);
    assert!(b4[2].max_sleep > b4[2].always_active);
    assert!(b4.last().unwrap().max_sleep < b4.last().unwrap().always_active);

    c.bench_function("fig4a_sweep", |b| {
        b.iter(|| std::hint::black_box(analytic::fig4a()))
    });
    c.bench_function("fig4bcd_policies", |b| {
        b.iter(|| {
            std::hint::black_box(analytic::fig4_policies(10.0, &[0.1, 0.9]));
            std::hint::black_box(analytic::fig4_policies(100.0, &[0.1, 0.9]));
            std::hint::black_box(analytic::fig4_policies(1.0, &[0.5]));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
