//! Bench: Figures 8a/8b (per-benchmark policy energies).

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_experiments::empirical::fig8;
use fuleak_experiments::harness::{run_suite_on, Budget};
use fuleak_experiments::scenario::Engine;

fn bench(c: &mut Criterion) {
    let engine = Engine::new(0); // fan the suite points out across cores
    let suite = run_suite_on(&engine, 12, Budget::Quick);
    // Shape checks: the paper's headline result at both points.
    let avg = |rows: &[fuleak_experiments::empirical::Fig8Row], k: usize| {
        rows.iter().map(|r| r.energy[k]).sum::<f64>() / rows.len() as f64
    };
    let a = fig8(&suite, 0.05, 0.5);
    assert!(avg(&a, 0) > avg(&a, 2), "p=0.05: MaxSleep must lose");
    let b8 = fig8(&suite, 0.5, 0.5);
    assert!(avg(&b8, 0) < avg(&b8, 2), "p=0.5: MaxSleep must win");
    c.bench_function("fig8_both_points", |b| {
        b.iter(|| {
            std::hint::black_box(fig8(&suite, 0.05, 0.5));
            std::hint::black_box(fig8(&suite, 0.5, 0.5));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
