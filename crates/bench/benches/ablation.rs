//! Bench: ablations beyond the paper — GradualSleep slice count, the
//! extension policies (TimeoutSleep, AdaptiveSleep), and the
//! spectrum evaluator against the historical per-interval replay.

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_core::accounting::{account_intervals, simulate_intervals};
use fuleak_core::closed_form::BoundaryPolicy;
use fuleak_core::policy::{AdaptiveSleep, TimeoutSleep};
use fuleak_core::policy_eval::spectrum_run;
use fuleak_core::{
    breakeven_interval, EnergyModel, IntervalSpectrum, PolicyForm, TechnologyParams,
};
use fuleak_workloads::synthetic::bimodal_intervals;

fn bench(c: &mut Criterion) {
    let model = EnergyModel::new(TechnologyParams::near_term(), 0.5).unwrap();
    let t_be = breakeven_interval(&model);
    let w = bimodal_intervals(9, 20_000, 3, 200, 0.2, 4);

    // Slice-count ablation: the paper's breakeven-many slices should
    // beat both extremes on bimodal traffic.
    let energy = |slices: u32| {
        account_intervals(
            &model,
            BoundaryPolicy::GradualSleep { slices },
            w.active_cycles,
            &w.idle_intervals,
        )
        .energy
        .total()
    };
    let paper_choice = energy(t_be.round() as u32);
    assert!(paper_choice < energy(1));
    assert!(paper_choice < energy(1024));

    c.bench_function("ablation_slice_sweep", |b| {
        b.iter(|| {
            for slices in [1u32, 2, 4, 8, 16, 20, 32, 64, 128] {
                std::hint::black_box(energy(slices));
            }
        })
    });
    // Spectrum evaluation vs per-interval replay: the same energies
    // from a compact length → count multiset in O(distinct lengths).
    let spectrum = IntervalSpectrum::from_lengths(&w.idle_intervals);
    let forms = [
        PolicyForm::MaxSleep,
        PolicyForm::AlwaysActive,
        PolicyForm::NoOverhead,
        PolicyForm::GradualSleep {
            slices: t_be.round() as u32,
        },
    ];
    for form in forms {
        let by_spectrum = spectrum_run(&model, form, w.active_cycles, &spectrum)
            .energy
            .total();
        let by_replay = account_intervals(
            &model,
            match form {
                PolicyForm::MaxSleep => BoundaryPolicy::MaxSleep,
                PolicyForm::AlwaysActive => BoundaryPolicy::AlwaysActive,
                PolicyForm::NoOverhead => BoundaryPolicy::NoOverhead,
                PolicyForm::GradualSleep { slices } => BoundaryPolicy::GradualSleep { slices },
                _ => unreachable!(),
            },
            w.active_cycles,
            &w.idle_intervals,
        )
        .energy
        .total();
        assert!(
            (by_spectrum - by_replay).abs() / by_replay < 1e-9,
            "{form:?}"
        );
    }
    c.bench_function("ablation_policy_spectrum_eval", |b| {
        b.iter(|| {
            for form in forms {
                std::hint::black_box(spectrum_run(
                    &model,
                    form,
                    w.active_cycles,
                    std::hint::black_box(&spectrum),
                ));
            }
        })
    });
    c.bench_function("ablation_policy_interval_replay", |b| {
        b.iter(|| {
            for policy in [
                BoundaryPolicy::MaxSleep,
                BoundaryPolicy::AlwaysActive,
                BoundaryPolicy::NoOverhead,
                BoundaryPolicy::GradualSleep {
                    slices: t_be.round() as u32,
                },
            ] {
                std::hint::black_box(account_intervals(
                    &model,
                    policy,
                    w.active_cycles,
                    std::hint::black_box(&w.idle_intervals),
                ));
            }
        })
    });
    c.bench_function("ablation_adaptive_controllers", |b| {
        b.iter(|| {
            let mut t = TimeoutSleep::new(t_be.round() as u64 / 2);
            std::hint::black_box(simulate_intervals(
                &model,
                &mut t,
                w.active_cycles,
                &w.idle_intervals,
            ));
            let mut a = AdaptiveSleep::new(t_be, 0.25);
            std::hint::black_box(simulate_intervals(
                &model,
                &mut a,
                w.active_cycles,
                &w.idle_intervals,
            ));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
