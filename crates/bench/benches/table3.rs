//! Bench: the Table 3 pipeline — kernel traces through the timing
//! simulator (FU-selection methodology validated separately in tests).

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_uarch::{CoreConfig, Simulator};
use fuleak_workloads::{Benchmark, TraceRecord};

fn trace_of(name: &str, budget: u64) -> Vec<TraceRecord> {
    let mut m = Benchmark::by_name(name).unwrap().instantiate();
    m.run(budget).collect::<Result<_, _>>().unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_sim");
    group.sample_size(10);
    for name in ["mst", "mcf", "vortex"] {
        let trace = trace_of(name, 100_000);
        // Shape check: simulated IPC is sane and ordered.
        let ipc = Simulator::new(CoreConfig::alpha21264())
            .unwrap()
            .run(trace.iter().copied())
            .ipc();
        assert!(ipc > 0.05 && ipc <= 4.0);
        group.bench_function(name, |b| {
            b.iter(|| {
                let sim = Simulator::new(CoreConfig::alpha21264())
                    .unwrap()
                    .run(trace.iter().copied());
                std::hint::black_box(sim.cycles)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
