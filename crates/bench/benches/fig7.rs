//! Bench: Figure 7 (idle-interval distribution) on a reduced budget.

use criterion::{criterion_group, criterion_main, Criterion};
use fuleak_experiments::empirical::fig7;
use fuleak_experiments::harness::{run_suite_on, Budget};
use fuleak_experiments::scenario::Engine;

fn bench(c: &mut Criterion) {
    let engine = Engine::new(0); // fan the suite points out across cores
    let suite = run_suite_on(&engine, 12, Budget::Quick);
    let series = fig7(&suite);
    // Shape check: idle time concentrated at short intervals.
    let below_128: f64 = series.fractions[..8].iter().sum();
    assert!(below_128 / series.total_idle_fraction > 0.5);
    c.bench_function("fig7_histogram", |b| {
        b.iter(|| std::hint::black_box(fig7(&suite)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
