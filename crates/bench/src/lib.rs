//! Benchmark support crate (see `benches/`).
