//! Cross-crate property tests: the analytical model, the cycle-level
//! controllers, and the gate-accurate circuit must all agree.

use fuleak_core::accounting::{account_intervals, simulate_cycles, simulate_intervals};
use fuleak_core::closed_form::{
    always_active, interval_energy, max_sleep, no_overhead, BoundaryPolicy, UsageScenario,
};
use fuleak_core::policy::{AlwaysActive, GradualSleep, MaxSleep, NoOverhead};
use fuleak_core::{breakeven_interval, EnergyModel, TechnologyParams};
use fuleak_domino::fu::{ExpectedFu, FuCircuitConfig};
use fuleak_domino::{FuCircuit, GateCharacterization};
use proptest::prelude::*;

prop_compose! {
    fn model_strategy()(p in 0.01f64..=1.0, alpha in 0.0f64..=1.0) -> EnergyModel {
        EnergyModel::new(TechnologyParams::with_leakage_factor(p).unwrap(), alpha).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interval accounting and cycle-by-cycle controller simulation
    /// agree exactly for every boundary policy.
    #[test]
    fn controllers_match_closed_forms(
        model in model_strategy(),
        intervals in prop::collection::vec(1u64..200, 1..40),
        slices in 1u32..32,
    ) {
        let active = intervals.len() as u64 + 5;
        let cases: Vec<(BoundaryPolicy, Box<dyn fuleak_core::policy::SleepController>)> = vec![
            (BoundaryPolicy::AlwaysActive, Box::new(AlwaysActive)),
            (BoundaryPolicy::MaxSleep, Box::new(MaxSleep::new())),
            (BoundaryPolicy::NoOverhead, Box::new(NoOverhead::new())),
            (BoundaryPolicy::GradualSleep { slices }, Box::new(GradualSleep::new(slices))),
        ];
        for (policy, mut ctrl) in cases {
            let closed = account_intervals(&model, policy, active, &intervals);
            let sim = simulate_intervals(&model, ctrl.as_mut(), active, &intervals);
            prop_assert!(
                (closed.energy.total() - sim.energy.total()).abs() < 1e-9,
                "{policy:?}: {} vs {}", closed.energy.total(), sim.energy.total()
            );
        }
    }

    /// NoOverhead lower-bounds every policy; AlwaysActive and MaxSleep
    /// bracket GradualSleep's total on any workload.
    #[test]
    fn no_overhead_is_global_floor(
        model in model_strategy(),
        intervals in prop::collection::vec(1u64..500, 1..40),
        slices in 1u32..64,
    ) {
        let active = intervals.len() as u64;
        let floor = account_intervals(&model, BoundaryPolicy::NoOverhead, active, &intervals)
            .energy.total();
        for policy in [
            BoundaryPolicy::AlwaysActive,
            BoundaryPolicy::MaxSleep,
            BoundaryPolicy::GradualSleep { slices },
        ] {
            let e = account_intervals(&model, policy, active, &intervals).energy.total();
            prop_assert!(floor <= e + 1e-9, "{policy:?} beat the floor");
        }
    }

    /// Equation (5): at the breakeven interval, sleeping and idling
    /// cost the same.
    #[test]
    fn breakeven_balances_the_tradeoff(model in model_strategy()) {
        let t = breakeven_interval(&model);
        prop_assume!(t.is_finite() && t < 1e6);
        let idle = t * model.uncontrolled_idle_cycle().total();
        let sleep = model.transition().total() + t * model.sleep_cycle().total();
        prop_assert!((idle - sleep).abs() < 1e-9);
    }

    /// The closed-form scenario energies (eqs. 6-8) match per-interval
    /// accounting when idle time arrives in equal intervals.
    #[test]
    fn scenario_equals_interval_sum(
        model in model_strategy(),
        t_idle in 1u64..200,
        n_intervals in 1u64..50,
        extra_active in 0u64..1000,
    ) {
        let active = n_intervals + extra_active;
        let total = active + n_intervals * t_idle;
        let scenario = UsageScenario::new(
            total,
            active as f64 / total as f64,
            t_idle as f64,
        ).unwrap();
        let intervals = vec![t_idle; n_intervals as usize];

        let aa_closed = always_active(&model, &scenario).total();
        let aa_sum = account_intervals(&model, BoundaryPolicy::AlwaysActive, active, &intervals)
            .energy.total();
        prop_assert!((aa_closed - aa_sum).abs() / aa_closed.max(1e-12) < 1e-9);

        // MaxSleep's closed form clamps transitions at n_A; with one
        // active cycle per interval the clamp is inactive.
        let ms_closed = max_sleep(&model, &scenario).total();
        let ms_sum = account_intervals(&model, BoundaryPolicy::MaxSleep, active, &intervals)
            .energy.total();
        prop_assert!((ms_closed - ms_sum).abs() / ms_closed.max(1e-12) < 1e-9);

        let no_closed = no_overhead(&model, &scenario).total();
        let no_sum = account_intervals(&model, BoundaryPolicy::NoOverhead, active, &intervals)
            .energy.total();
        prop_assert!((no_closed - no_sum).abs() / no_closed.max(1e-12) < 1e-9);
    }

    /// The gate-accurate expected-value circuit and the architectural
    /// model agree on idle-interval energies once the model is built
    /// from the gate's own derived parameters.
    #[test]
    fn circuit_matches_architecture_model(
        alpha in 0.0f64..=1.0,
        interval in 0u64..60,
    ) {
        let g = GateCharacterization::dual_vt_sleep_or8();
        let tech = TechnologyParams::new(
            g.energies.leakage_factor(),
            g.energies.leak_ratio(),
            g.energies.sleep_switch_fraction(),
            0.5,
        ).unwrap();
        let model = EnergyModel::new(tech, alpha).unwrap();
        let e_d = 500.0 * g.energies.dynamic.as_fj();

        let mut fu = ExpectedFu::new(FuCircuitConfig::paper_generic_fu()).unwrap();
        fu.evaluate_cycle(alpha).unwrap();
        fu.reset_energy();
        for _ in 0..interval {
            fu.sleep_cycle().unwrap();
        }
        let circuit_fj = fu.energy().total().as_fj();
        let model_fj =
            interval_energy(&model, BoundaryPolicy::MaxSleep, interval).total() * e_d;
        prop_assert!(
            (circuit_fj - model_fj).abs() < 1e-6,
            "interval {interval} alpha {alpha}: circuit {circuit_fj} vs model {model_fj}"
        );
    }

    /// Monte-Carlo gate circuit stays within a few percent of the
    /// expected-value circuit.
    #[test]
    fn stochastic_circuit_tracks_expectation(seed in 0u64..1000) {
        let cfg = FuCircuitConfig::paper_generic_fu();
        let mut mc = FuCircuit::with_seed(cfg, seed).unwrap();
        let mut ev = ExpectedFu::new(cfg).unwrap();
        for _ in 0..30 {
            mc.evaluate_cycle(0.5).unwrap();
            ev.evaluate_cycle(0.5).unwrap();
            for _ in 0..4 {
                mc.idle_cycle().unwrap();
                ev.idle_cycle().unwrap();
            }
            mc.sleep_cycle().unwrap();
            ev.sleep_cycle().unwrap();
        }
        let rel = (mc.energy().total().as_fj() - ev.energy().total().as_fj()).abs()
            / ev.energy().total().as_fj();
        prop_assert!(rel < 0.05, "relative error {rel}");
    }

    /// Energy is monotone in the leakage factor for any fixed workload
    /// under AlwaysActive.
    #[test]
    fn energy_monotone_in_p(
        alpha in 0.0f64..=1.0,
        intervals in prop::collection::vec(1u64..100, 1..20),
    ) {
        let active = intervals.len() as u64;
        let mut prev = 0.0;
        for i in 0..=10 {
            let p = f64::from(i) / 10.0;
            let model = EnergyModel::new(
                TechnologyParams::with_leakage_factor(p).unwrap(),
                alpha,
            ).unwrap();
            let e = account_intervals(&model, BoundaryPolicy::AlwaysActive, active, &intervals)
                .energy.total();
            prop_assert!(e >= prev - 1e-12);
            prev = e;
        }
    }

    /// A cycle stream and its interval decomposition produce the same
    /// recorder statistics and the same energy.
    #[test]
    fn recorder_round_trips_streams(
        pattern in prop::collection::vec(any::<bool>(), 1..500),
    ) {
        let mut rec = fuleak_core::IdleRecorder::new();
        for &busy in &pattern {
            rec.observe(busy);
        }
        rec.finish();
        let active = rec.active_cycles();
        let intervals = rec.spectrum().to_lengths();
        prop_assert_eq!(
            active + intervals.iter().sum::<u64>(),
            pattern.len() as u64
        );

        // Energy from the raw stream equals energy from intervals for
        // a stateless policy (AlwaysActive).
        let model = EnergyModel::new(TechnologyParams::high_leakage(), 0.5).unwrap();
        let from_stream =
            simulate_cycles(&model, &mut AlwaysActive, pattern.iter().copied());
        let from_intervals =
            account_intervals(&model, BoundaryPolicy::AlwaysActive, active, &intervals);
        prop_assert!(
            (from_stream.energy.total() - from_intervals.energy.total()).abs() < 1e-9
        );
    }
}
