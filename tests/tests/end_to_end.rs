//! End-to-end integration: benchmark kernels through the timing
//! simulator through the energy model, asserting the paper's headline
//! shapes (DESIGN.md §5).

use fuleak_core::{EnergyModel, TechnologyParams};
use fuleak_experiments::empirical::{benchmark_energy, fig7, fig8, fig9, PolicyKind};
use fuleak_experiments::harness::{run_benchmark, run_suite, Budget, SuiteResult};
use fuleak_uarch::{CoreConfig, Simulator};
use fuleak_workloads::Benchmark;
use std::sync::OnceLock;

fn suite() -> &'static SuiteResult {
    static SUITE: OnceLock<SuiteResult> = OnceLock::new();
    SUITE.get_or_init(|| run_suite(12, Budget::Quick))
}

#[test]
fn every_benchmark_simulates_and_commits_the_budget() {
    for run in &suite().runs {
        assert_eq!(
            run.sim.committed,
            Budget::Quick.instructions(),
            "{} committed the wrong count",
            run.name
        );
        assert!(run.sim.ipc() > 0.05 && run.sim.ipc() <= 4.0, "{}", run.name);
    }
}

#[test]
fn ipc_ordering_matches_table3_extremes() {
    let ipc = |name: &str| {
        suite()
            .runs
            .iter()
            .find(|r| r.name == name)
            .unwrap()
            .sim
            .ipc()
    };
    // Table 3's extremes: vortex fastest; mcf and health the two
    // slowest (memory-bound pointer chasers).
    for other in [
        "health", "mst", "gcc", "gzip", "mcf", "parser", "twolf", "vpr",
    ] {
        assert!(ipc("vortex") > ipc(other), "vortex <= {other}");
    }
    for slow in ["mcf", "health"] {
        for fast in ["mst", "gcc", "gzip", "parser", "twolf", "vpr"] {
            assert!(ipc(slow) < ipc(fast), "{slow} >= {fast}");
        }
    }
}

#[test]
fn fu_utilization_accounts_for_every_cycle() {
    for run in &suite().runs {
        for (fu, spectrum) in run.sim.fu_idle.iter().enumerate() {
            assert_eq!(
                spectrum.idle_cycles() + run.sim.fu_active[fu],
                run.sim.cycles,
                "{} FU{fu}",
                run.name
            );
        }
    }
}

#[test]
fn figure7_shape_holds() {
    let series = fig7(suite());
    // Idle fractions are probabilities and sum to the total.
    let sum: f64 = series.fractions.iter().sum();
    assert!((sum - series.total_idle_fraction).abs() < 1e-12);
    assert!(series.total_idle_fraction > 0.2 && series.total_idle_fraction < 0.8);
    // Nearly all idle time below 128 cycles (paper, Section 5).
    let below_128: f64 = series.fractions[..8].iter().sum();
    assert!(below_128 / series.total_idle_fraction > 0.5);
}

#[test]
fn longer_l2_latency_increases_idle_time() {
    // Figure 7's second curve: a 32-cycle L2 increases overall idle
    // time on at least the memory-sensitive benchmarks.
    let quick12 = run_benchmark(Benchmark::by_name("health").unwrap(), 12, Budget::Quick);
    let quick32 = run_benchmark(Benchmark::by_name("health").unwrap(), 32, Budget::Quick);
    assert!(
        quick32.sim.cycles > quick12.sim.cycles,
        "longer L2 must slow health down"
    );
}

#[test]
fn figure8_headline_results() {
    // p = 0.05: MaxSleep wastes energy (paper: +8.3% vs AlwaysActive);
    // AlwaysActive within ~10% of NoOverhead; GradualSleep within ~5%
    // of AlwaysActive.
    let rows = fig8(suite(), 0.05, 0.5);
    let avg = |k: usize| rows.iter().map(|r| r.energy[k]).sum::<f64>() / rows.len() as f64;
    let (ms, gs, aa, no) = (avg(0), avg(1), avg(2), avg(3));
    assert!(
        ms > aa,
        "p=0.05: MaxSleep {ms} should exceed AlwaysActive {aa}"
    );
    assert!((aa - no) / no < 0.15, "AlwaysActive near the bound");
    assert!(
        (gs - aa).abs() / aa < 0.10,
        "GradualSleep tracks AlwaysActive"
    );

    // p = 0.5: MaxSleep saves substantially (paper: 19.2% on average,
    // ~70% of the NoOverhead potential); GradualSleep ~ MaxSleep.
    let rows = fig8(suite(), 0.5, 0.5);
    let avg = |k: usize| rows.iter().map(|r| r.energy[k]).sum::<f64>() / rows.len() as f64;
    let (ms, gs, aa, no) = (avg(0), avg(1), avg(2), avg(3));
    assert!(ms < aa, "p=0.5: MaxSleep must win");
    let saving = (aa - ms) / aa;
    assert!(saving > 0.08, "saving {saving} too small");
    let captured = (aa - ms) / (aa - no);
    assert!(captured > 0.4, "captured {captured} of the potential");
    assert!((gs - ms).abs() / ms < 0.10, "GradualSleep tracks MaxSleep");
}

#[test]
fn figure9_crossover_and_gradual_envelope() {
    let rows = fig9(suite());
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    // MaxSleep and AlwaysActive swap places across the sweep.
    assert!(first.relative[0] > first.relative[2]);
    assert!(last.relative[0] < last.relative[2]);
    // GradualSleep hugs the lower envelope everywhere.
    for r in &rows {
        let envelope = r.relative[0].min(r.relative[2]);
        assert!(r.relative[1] <= envelope * 1.15);
    }
    // Figure 9b: leakage fraction rises with p for AlwaysActive.
    assert!(first.leakage_fraction[2] < last.leakage_fraction[2]);
}

#[test]
fn alpha_bands_behave_like_the_paper() {
    // Figure 8's small range bars: at alpha = 0.25 fewer gates end an
    // evaluation in the low-leakage state, so entering sleep costs
    // more; at alpha = 0.75 it costs less. The pure sleep-mode
    // overhead (MaxSleep minus the free-transition bound) must fall
    // monotonically with alpha.
    let run = &suite().runs[0];
    let overhead = |alpha: f64| {
        let model =
            EnergyModel::new(TechnologyParams::with_leakage_factor(0.05).unwrap(), alpha).unwrap();
        let ms = benchmark_energy(run, &model, PolicyKind::MaxSleep)
            .energy
            .total();
        let no = benchmark_energy(run, &model, PolicyKind::NoOverhead)
            .energy
            .total();
        ms - no
    };
    assert!(overhead(0.25) > overhead(0.5));
    assert!(overhead(0.75) < overhead(0.5));
}

#[test]
fn restricting_fus_never_speeds_things_up() {
    let bench = Benchmark::by_name("twolf").unwrap();
    let mut prev_ipc = 0.0;
    for fus in 1..=4 {
        let mut m = bench.instantiate();
        let trace = m.run(100_000).map(|r| r.unwrap());
        let sim = Simulator::new(CoreConfig::with_int_fus(fus))
            .unwrap()
            .run(trace);
        assert!(
            sim.ipc() >= prev_ipc - 1e-9,
            "{fus} FUs slower than {}",
            fus - 1
        );
        prev_ipc = sim.ipc();
    }
}

#[test]
fn selected_fu_counts_are_meaningful() {
    // The 95% rule must trim FUs on the low-ILP benchmarks and keep
    // them on the high-ILP ones.
    let by_name = |n: &str| suite().runs.iter().find(|r| r.name == n).unwrap();
    assert!(by_name("mcf").fus <= 2);
    assert!(by_name("health").fus <= 2);
    assert!(by_name("vortex").fus >= 3);
}
