//! The scenario engine's central guarantee: a parallel run is
//! bit-identical to a sequential one. Policies and kernels are
//! documented as deterministic (`core/src/policy.rs`,
//! `workloads/src/kernels/mod.rs`), every simulation is
//! single-threaded and seeded, and the engine only changes *where*
//! points run — never what they compute.

use fuleak_experiments::harness::{run_benchmark_on, run_suite_on, Budget};
use fuleak_experiments::scenario::{Engine, Scenario, SweepSpec};
use fuleak_workloads::Benchmark;

/// Small enough to keep the double suite run cheap, large enough to
/// exercise every pipeline structure.
const BUDGET: Budget = Budget::Custom(60_000);

#[test]
fn parallel_suite_is_bit_identical_to_sequential() {
    let sequential = run_suite_on(&Engine::new(1), 12, BUDGET);
    let parallel = run_suite_on(&Engine::new(4), 12, BUDGET);
    // Field-exact equality across every benchmark: cycles, committed
    // instructions, per-FU idle intervals, branch and cache counters.
    assert_eq!(sequential, parallel);
}

#[test]
fn single_benchmark_agrees_across_worker_counts() {
    let bench = Benchmark::by_name("mst").unwrap();
    let one = run_benchmark_on(&Engine::new(1), bench, 12, BUDGET);
    let many = run_benchmark_on(&Engine::new(8), bench, 12, BUDGET);
    assert_eq!(one, many);
}

#[test]
fn suite_points_land_in_the_shared_cache() {
    let engine = Engine::new(4);
    let first = run_suite_on(&engine, 12, BUDGET);
    let simulated = engine.stats().misses;
    // 9 benchmarks x 4 FU candidates, each simulated exactly once.
    assert_eq!(simulated, Benchmark::all().len() * 4);

    // Re-running the suite must be pure cache replay...
    let second = run_suite_on(&engine, 12, BUDGET);
    assert_eq!(engine.stats().misses, simulated, "re-run re-simulated");
    assert_eq!(first, second);

    // ...and a direct sweep over the same points adds nothing.
    let spec = SweepSpec::new(BUDGET).l2_latencies([12]);
    assert_eq!(engine.run_sweep(&spec), 0);
}

#[test]
fn scenario_results_are_stable_across_engines() {
    let s = Scenario {
        bench: "gzip",
        fus: 2,
        l2_latency: 12,
        budget: BUDGET,
    };
    let a = Engine::new(3).result(s);
    let b = Engine::sequential().result(s);
    assert_eq!(*a, *b);
}

#[test]
fn cached_trace_replay_is_bit_identical_to_fresh_execution() {
    // The engine captures one packed trace per (bench, budget) and
    // replays it across the FU × L2 sweep; a replayed point must be
    // field-exactly equal to re-running the functional executor from
    // scratch (`Scenario::run` never touches the caches).
    let engine = Engine::new(4);
    let spec = SweepSpec::new(BUDGET)
        .benches(["mst", "vpr"])
        .fu_counts([1, 4])
        .l2_latencies([12, 32]);
    engine.run_sweep(&spec);
    // All four FU/L2 variations of each benchmark replayed one trace.
    assert_eq!(engine.trace_cache().len(), 2);
    assert_eq!(engine.trace_cache().captures(), 2);
    for s in spec.scenarios() {
        assert_eq!(*engine.result(s), s.run(), "{s:?} diverged from replay");
    }
}

#[test]
fn suite_runs_one_functional_execution_per_benchmark() {
    // Both L2 latencies of the full suite — 2 × 9 × 4 timing points —
    // must share the nine per-benchmark traces.
    let engine = Engine::new(4);
    let twelve = run_suite_on(&engine, 12, BUDGET);
    let thirty_two = run_suite_on(&engine, 32, BUDGET);
    assert_eq!(engine.trace_cache().captures(), Benchmark::all().len());
    assert_eq!(engine.stats().misses, Benchmark::all().len() * 4 * 2);
    // And the sequential, lazily-simulating engine agrees point for
    // point despite a different trace-capture and simulation order.
    let seq = Engine::new(1);
    assert_eq!(run_suite_on(&seq, 12, BUDGET), twelve);
    assert_eq!(run_suite_on(&seq, 32, BUDGET), thirty_two);
    assert_eq!(seq.trace_cache().captures(), Benchmark::all().len());
}
