//! The scenario engine's central guarantee: a parallel run is
//! bit-identical to a sequential one. Policies and kernels are
//! documented as deterministic (`core/src/policy.rs`,
//! `workloads/src/kernels/mod.rs`), every simulation is
//! single-threaded and seeded, and the engine only changes *where*
//! points run — never what they compute.

use fuleak_experiments::harness::{run_benchmark_on, run_suite_on, Budget};
use fuleak_experiments::scenario::{Engine, Scenario, SweepSpec};
use fuleak_uarch::MachineConfig;
use fuleak_workloads::Benchmark;

/// Small enough to keep the double suite run cheap, large enough to
/// exercise every pipeline structure.
const BUDGET: Budget = Budget::Custom(60_000);

#[test]
fn parallel_suite_is_bit_identical_to_sequential() {
    let sequential = run_suite_on(&Engine::new(1), 12, BUDGET);
    let parallel = run_suite_on(&Engine::new(4), 12, BUDGET);
    // Field-exact equality across every benchmark: cycles, committed
    // instructions, per-FU idle intervals, branch and cache counters.
    assert_eq!(sequential, parallel);
}

#[test]
fn single_benchmark_agrees_across_worker_counts() {
    let bench = Benchmark::by_name("mst").unwrap();
    let one = run_benchmark_on(&Engine::new(1), bench, 12, BUDGET);
    let many = run_benchmark_on(&Engine::new(8), bench, 12, BUDGET);
    assert_eq!(one, many);
}

#[test]
fn suite_points_land_in_the_shared_cache() {
    let engine = Engine::new(4);
    let first = run_suite_on(&engine, 12, BUDGET);
    let simulated = engine.stats().misses;
    // 9 benchmarks x 4 FU candidates, each simulated exactly once.
    assert_eq!(simulated, Benchmark::all().len() * 4);

    // Re-running the suite must be pure cache replay...
    let second = run_suite_on(&engine, 12, BUDGET);
    assert_eq!(engine.stats().misses, simulated, "re-run re-simulated");
    assert_eq!(first, second);

    // ...and a direct sweep over the same points adds nothing.
    let spec = SweepSpec::new(BUDGET).l2_latencies([12]);
    assert_eq!(engine.run_sweep(&spec), 0);
}

#[test]
fn scenario_results_are_stable_across_engines() {
    let s = Scenario::paper("gzip", 2, 12, BUDGET);
    let a = Engine::new(3).result(s.clone());
    let b = Engine::sequential().result(s);
    assert_eq!(*a, *b);
}

#[test]
fn cached_trace_replay_is_bit_identical_to_fresh_execution() {
    // The engine captures one packed trace per (bench, budget) and
    // replays it across the FU × L2 sweep; a replayed point must be
    // field-exactly equal to re-running the functional executor from
    // scratch (`Scenario::run` never touches the caches).
    let engine = Engine::new(4);
    let spec = SweepSpec::new(BUDGET)
        .benches(["mst", "vpr"])
        .fu_counts([1, 4])
        .l2_latencies([12, 32]);
    engine.run_sweep(&spec);
    // All four FU/L2 variations of each benchmark replayed one trace.
    assert_eq!(engine.trace_cache().len(), 2);
    assert_eq!(engine.trace_cache().captures(), 2);
    for s in spec.scenarios() {
        let fresh = s.run().unwrap();
        assert_eq!(
            *engine.result(s.clone()),
            fresh,
            "{s:?} diverged from replay"
        );
    }
}

#[test]
fn suite_runs_one_functional_execution_per_benchmark() {
    // Both L2 latencies of the full suite — 2 × 9 × 4 timing points —
    // must share the nine per-benchmark traces.
    let engine = Engine::new(4);
    let twelve = run_suite_on(&engine, 12, BUDGET);
    let thirty_two = run_suite_on(&engine, 32, BUDGET);
    assert_eq!(engine.trace_cache().captures(), Benchmark::all().len());
    assert_eq!(engine.stats().misses, Benchmark::all().len() * 4 * 2);
    // And the sequential, lazily-simulating engine agrees point for
    // point despite a different trace-capture and simulation order.
    let seq = Engine::new(1);
    assert_eq!(run_suite_on(&seq, 12, BUDGET), twelve);
    assert_eq!(run_suite_on(&seq, 32, BUDGET), thirty_two);
    assert_eq!(seq.trace_cache().captures(), Benchmark::all().len());
}

#[test]
fn non_paper_axes_key_the_cache_distinctly_across_worker_counts() {
    // The MachineConfig key must separate machine variants the paper
    // never studied — here width 2 vs width 4 — and keep the engine's
    // jobs=1 ≡ jobs=4 guarantee over them.
    let spec = SweepSpec::new(BUDGET)
        .benches(["gzip"])
        .axis_int_fus([2])
        .axis_l2_latency([12])
        .axis_width([2, 4]);
    let scenarios = spec.scenarios();
    assert_eq!(scenarios.len(), 2);

    let seq = Engine::new(1);
    let par = Engine::new(4);
    assert_eq!(seq.run_sweep(&spec), 2);
    assert_eq!(par.run_sweep(&spec), 2);

    // Distinct cached points under distinct machine keys...
    assert_eq!(seq.cache().len(), 2, "width variants aliased in the cache");
    let narrow = seq.result(scenarios[0].clone());
    let wide = seq.result(scenarios[1].clone());
    assert_ne!(scenarios[0].machine, scenarios[1].machine);
    assert_ne!(
        scenarios[0].machine.fingerprint(),
        scenarios[1].machine.fingerprint()
    );
    assert_ne!(*narrow, *wide, "width must change the timing result");

    // ...agreeing field-exactly across worker counts, with re-lookup
    // served from cache.
    for s in &scenarios {
        assert_eq!(
            *seq.result(s.clone()),
            *par.result(s.clone()),
            "{s:?} diverged"
        );
    }
    assert_eq!(seq.cache().len(), 2);
    assert_eq!(par.cache().len(), 2);

    // Both variants replayed the single captured gzip trace.
    assert_eq!(seq.trace_cache().captures(), 1);
}

#[test]
fn l2_latency_sweep_shares_one_annotation_per_benchmark() {
    // L2 latency is a timing axis: every point of an L2 sweep shares
    // its benchmark's single front-end geometry annotation, and each
    // two-phase result stays field-exactly equal to the direct
    // single-phase path (`Scenario::run` executes the kernel fresh and
    // runs the reference `Simulator`, touching no cache).
    let engine = Engine::new(4);
    let spec = SweepSpec::new(BUDGET)
        .benches(["gzip", "mst"])
        .axis_int_fus([1, 2, 4])
        .axis_l2_latency([8, 12, 20, 32]);
    engine.run_sweep(&spec);
    assert_eq!(engine.stats().misses, 2 * 3 * 4);
    assert_eq!(
        engine.annotation_cache().len(),
        2,
        "an L2×FU sweep must annotate each benchmark exactly once"
    );
    assert_eq!(engine.annotation_cache().built(), 2);
    assert!(engine.annotation_cache().annotated_bytes() > 0);
    for s in spec.scenarios() {
        assert_eq!(
            *engine.result(s.clone()),
            s.run().unwrap(),
            "{s:?}: two-phase diverged from the direct path"
        );
    }
    // A geometry change (smaller BTB) forces — and gets — exactly one
    // new annotation per benchmark, under the same trace.
    let narrow_btb = SweepSpec::new(BUDGET)
        .benches(["gzip", "mst"])
        .base(MachineConfig::derived(|c| c.btb_sets = 16).unwrap())
        .axis_int_fus([1, 4])
        .axis_l2_latency([12, 32]);
    engine.run_sweep(&narrow_btb);
    assert_eq!(engine.annotation_cache().len(), 4);
    assert_eq!(engine.trace_cache().captures(), 2, "traces still shared");
    for s in narrow_btb.scenarios() {
        assert_eq!(*engine.result(s.clone()), s.run().unwrap(), "{s:?}");
    }
}

#[test]
fn rebuilt_machine_configs_hit_the_same_cache_entry() {
    // A MachineConfig rebuilt from an equal CoreConfig must be the
    // same cache key: same fingerprint, same interned storage, and a
    // cache hit rather than a re-simulation.
    let engine = Engine::sequential();
    let a = Scenario::new(
        "mst",
        MachineConfig::derived(|c| c.rob_entries = 64).unwrap(),
        BUDGET,
    );
    let first = engine.result(a);
    let misses = engine.stats().misses;
    let b = Scenario::new(
        "mst",
        MachineConfig::derived(|c| c.rob_entries = 64).unwrap(),
        BUDGET,
    );
    let second = engine.result(b);
    assert_eq!(engine.stats().misses, misses, "equal machine re-simulated");
    assert_eq!(*first, *second);
}

#[test]
fn policy_sweep_is_identical_across_worker_counts_and_pure_on_warm_caches() {
    // The evaluation layer inherits the engine guarantee: a policy ×
    // slices × leakage sweep serializes byte-identically whether the
    // underlying points were simulated on 1 worker or 4, and over a
    // warm engine it is pure cache evaluation — no simulation, no
    // annotation, no trace capture.
    use fuleak_experiments::experiment::sweep_table;
    use fuleak_experiments::policy::PolicyKind;

    let spec = SweepSpec::new(BUDGET)
        .benches(["gzip", "mst"])
        .axis_int_fus([1, 2])
        .axis_l2_latency([12])
        .axis_policy([
            PolicyKind::MaxSleep,
            PolicyKind::GradualSleep,
            PolicyKind::AlwaysActive,
            PolicyKind::NoOverhead,
        ])
        .axis_slices([2, 8, 32])
        .axis_leak_ratio([0.05, 0.5]);

    let seq = Engine::new(1);
    let par = Engine::new(4);
    let table_seq = sweep_table(&seq, &spec).unwrap();
    let table_par = sweep_table(&par, &spec).unwrap();
    assert_eq!(table_seq.to_json(), table_par.to_json());
    assert_eq!(table_seq.to_csv(), table_par.to_csv());
    // 4 machine points × (3 gradual slice counts + 3 dedup'd others)
    // × 2 leakage points.
    assert_eq!(table_seq.rows().len(), 4 * (3 + 3) * 2);

    // Warm re-evaluation: rows reprice from the policy cache alone.
    let sims = par.stats().misses;
    let annotations = par.annotation_cache().built();
    let captures = par.trace_cache().captures();
    let again = sweep_table(&par, &spec).unwrap();
    assert_eq!(again.to_json(), table_par.to_json());
    assert_eq!(par.stats().misses, sims, "warm policy sweep re-simulated");
    assert_eq!(par.annotation_cache().built(), annotations);
    assert_eq!(par.trace_cache().captures(), captures);
    assert!(par.policy_cache().hits() >= again.rows().len());
}
